"""Trace-driven interference: replay a recorded write schedule.

The Table IV containers are *closed-loop*: when the disk is congested,
their writes stretch and the next checkpoint slips, so the interference
an analytics run sees depends (slightly) on the analytics' own behaviour.
Replay makes the interference **open-loop**: a pre-synthesized schedule
of (time, bytes) write events is replayed verbatim, so every policy under
comparison faces byte-identical interference — the standard
variance-reduction technique of trace-driven storage evaluation.  Traces
round-trip through CSV for interchange with real block traces.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable, Sequence

import numpy as np

from repro.simkernel import Interrupt, Timeout
from repro.util.rng import make_rng
from repro.workloads.noise import NoiseSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.containers import Container, ContainerRuntime
    from repro.storage.tier import StorageTier

__all__ = [
    "TraceEvent",
    "synthesize_trace",
    "trace_to_csv",
    "trace_from_csv",
    "replay_workload",
    "launch_replay",
]


@dataclass(frozen=True)
class TraceEvent:
    """One write burst: start time (s) and size (bytes)."""

    time: float
    nbytes: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.nbytes <= 0:
            raise ValueError(f"event size must be > 0, got {self.nbytes}")


def synthesize_trace(
    specs: Sequence[NoiseSpec],
    duration: float,
    seed: int | np.random.Generator | None = 0,
    *,
    phase_jitter: float = 1.0,
    period_jitter: float = 0.005,
) -> list[TraceEvent]:
    """Pre-compute the write schedule the noise containers *would* issue.

    Open-loop: periods drift per the jitter model but never stretch under
    contention.  Events from all containers are merged and time-sorted.
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    rng = make_rng(seed)
    events: list[TraceEvent] = []
    for spec in specs:
        sub = make_rng(int(rng.integers(0, 2**62)))
        t = float(sub.random() * spec.period * phase_jitter)
        while t < duration:
            events.append(TraceEvent(time=t, nbytes=spec.checkpoint_bytes))
            jitter = 1.0 + period_jitter * float(sub.standard_normal())
            t += spec.period * max(jitter, 0.1)
    events.sort(key=lambda e: e.time)
    return events


def trace_to_csv(events: Iterable[TraceEvent]) -> str:
    """Render a trace as CSV text (``time,nbytes`` header + rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["time", "nbytes"])
    for ev in events:
        writer.writerow([f"{ev.time:.6f}", ev.nbytes])
    return buf.getvalue()


def trace_from_csv(text: str) -> list[TraceEvent]:
    """Parse a trace from CSV text (inverse of :func:`trace_to_csv`)."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or not {"time", "nbytes"} <= set(reader.fieldnames):
        raise ValueError("trace CSV needs 'time' and 'nbytes' columns")
    events = [
        TraceEvent(time=float(row["time"]), nbytes=int(row["nbytes"]))
        for row in reader
    ]
    return sorted(events, key=lambda e: e.time)


def replay_workload(
    container: "Container",
    tier: "StorageTier",
    events: Sequence[TraceEvent],
    *,
    overlap: bool = True,
) -> Generator:
    """Generator replaying a write trace into ``tier``.

    With ``overlap=True`` (default) each burst is submitted at its trace
    time even if earlier bursts are still draining — faithful open-loop
    replay.  ``overlap=False`` serialises bursts (a single-writer replay).
    Returns the number of bursts issued.
    """
    fs = tier.filesystem
    sim = container.sim
    issued = 0
    pending = []
    try:
        for i, ev in enumerate(sorted(events, key=lambda e: e.time)):
            delay = ev.time - sim.now
            if delay > 0:
                yield Timeout(delay)
            fname = f"{container.name}/burst-{i}"
            if fname in fs:
                write_event = fs.overwrite(container.cgroup, fname)
            else:
                write_event = fs.write(container.cgroup, fname, ev.nbytes)
            issued += 1
            if overlap:
                pending.append(write_event)
            else:
                yield write_event
        for write_event in pending:
            if not write_event.triggered:
                yield write_event
        return issued
    except Interrupt:
        return issued


def launch_replay(
    runtime: "ContainerRuntime",
    tier: "StorageTier",
    events: Sequence[TraceEvent],
    *,
    name: str = "replay",
    overlap: bool = True,
) -> "Container":
    """Start a container replaying ``events`` into ``tier``."""
    return runtime.run(
        name,
        lambda c: replay_workload(c, tier, events, overlap=overlap),
    )
