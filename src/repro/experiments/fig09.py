"""Fig. 9 — interference mitigation with error control.

Same grid as Fig. 8 but with the error bound enforced: ε = 0.01 for
NRMSE and 30 dB for PSNR.  Error control mandates a minimum augmentation,
so the adaptive policies' I/O time may rise relative to Fig. 8 — the
price of the accuracy guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS
from repro.core.error_control import ErrorMetric
from repro.experiments.config import ScenarioConfig
from repro.experiments.fig08 import Fig8Result, run_policy_grid

__all__ = ["Fig9Result", "run_fig09"]

#: The paper's Fig. 9 bounds.
NRMSE_BOUND = 0.01
PSNR_BOUND = 30.0

#: PSNR ladder used when the metric is PSNR (dB, loosest first).
PSNR_LADDER = (20.0, 30.0, 45.0, 60.0)


@dataclass(frozen=True)
class Fig9Result:
    nrmse: Fig8Result
    psnr: Fig8Result

    def format_rows(self) -> str:
        return (
            self.nrmse.format_rows().replace(
                "Fig 9:", f"Fig 9 (NRMSE eps={NRMSE_BOUND}):"
            )
            + "\n\n"
            + self.psnr.format_rows().replace(
                "Fig 9:", f"Fig 9 (PSNR eps={PSNR_BOUND} dB):"
            )
        )


def run_fig09(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
) -> Fig9Result:
    """Both error metrics at their Fig. 9 bounds, across the policy grid."""
    nrmse_base = ScenarioConfig(
        metric=ErrorMetric.NRMSE,
        prescribed_bound=NRMSE_BOUND,
        seed=seed,
    )
    psnr_base = ScenarioConfig(
        metric=ErrorMetric.PSNR,
        error_bounds=PSNR_LADDER,
        prescribed_bound=PSNR_BOUND,
        seed=seed,
    )
    nrmse = run_policy_grid(
        apps=apps,
        error_control=True,
        base_config=nrmse_base,
        replications=replications,
        max_steps=max_steps,
    )
    psnr = run_policy_grid(
        apps=apps,
        error_control=True,
        base_config=psnr_base,
        replications=replications,
        max_steps=max_steps,
    )
    return Fig9Result(nrmse=nrmse, psnr=psnr)
