"""Fig. 5 — schematic of the weight function.

Sweeps each argument of ``w(|Aug|, ε, p)`` with the others fixed and
reports the resulting blkio weights, demonstrating the three design
principles: weight grows with cardinality, grows with priority, and
shrinks as the accuracy level tightens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.error_control import ErrorMetric
from repro.core.weights import WeightFunction
from repro.experiments.report import format_series

__all__ = ["Fig5Result", "run_fig05"]


@dataclass(frozen=True)
class Fig5Result:
    metric: ErrorMetric
    cardinalities: tuple[float, ...]
    weight_vs_cardinality: tuple[int, ...]
    accuracies: tuple[float, ...]
    weight_vs_accuracy: tuple[int, ...]
    priorities: tuple[float, ...]
    weight_vs_priority: tuple[int, ...]

    def format_rows(self) -> str:
        lines = [f"Fig 5: weight function schematic ({self.metric.value})"]
        lines.append(
            format_series(
                "  weight vs cardinality",
                self.cardinalities,
                self.weight_vs_cardinality,
                fmt="{:.0f}",
            )
        )
        lines.append(
            format_series(
                "  weight vs accuracy",
                self.accuracies,
                self.weight_vs_accuracy,
                fmt="{:.0f}",
            )
        )
        lines.append(
            format_series(
                "  weight vs priority",
                self.priorities,
                self.weight_vs_priority,
                fmt="{:.0f}",
            )
        )
        return "\n".join(lines)


def run_fig05(
    *,
    metric: ErrorMetric = ErrorMetric.NRMSE,
    cardinality_range: tuple[float, float] = (1_000, 100_000),
    accuracy_range: tuple[float, float] = (0.1, 0.0001),
    priority_range: tuple[float, float] = (1.0, 10.0),
    points: int = 6,
) -> Fig5Result:
    """Evaluate the calibrated weight function along each axis."""
    wf = WeightFunction.calibrated(
        metric,
        cardinality_range=cardinality_range,
        accuracy_range=accuracy_range,
        priority_range=priority_range,
    )
    card_mid = float(np.sqrt(cardinality_range[0] * cardinality_range[1]))
    eps_mid = float(np.sqrt(accuracy_range[0] * accuracy_range[1]))
    p_mid = float(np.mean(priority_range))

    cards = tuple(np.linspace(*cardinality_range, points))
    if metric is ErrorMetric.NRMSE:
        accs = tuple(np.geomspace(accuracy_range[0], accuracy_range[1], points))
    else:
        accs = tuple(np.linspace(accuracy_range[0], accuracy_range[1], points))
    prios = tuple(np.linspace(*priority_range, points))

    return Fig5Result(
        metric=metric,
        cardinalities=cards,
        weight_vs_cardinality=tuple(wf(c, eps_mid, p_mid) for c in cards),
        accuracies=accs,
        weight_vs_accuracy=tuple(wf(card_mid, e, p_mid) for e in accs),
        priorities=prios,
        weight_vs_priority=tuple(wf(card_mid, eps_mid, p) for p in prios),
    )
