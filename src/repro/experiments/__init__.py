"""The evaluation harness: one module per paper table/figure.

Every experiment function returns a plain-data result object whose
``format_rows()`` (or module-level ``print_*``) renders the same
rows/series the paper reports.  See DESIGN.md's per-experiment index.
"""

from repro.experiments.config import ScenarioConfig, DEFAULTS
from repro.experiments.runner import ScenarioResult, run_scenario

__all__ = ["ScenarioConfig", "DEFAULTS", "ScenarioResult", "run_scenario"]
