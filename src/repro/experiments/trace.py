"""Trace export: per-step records as CSV or JSON for offline plotting.

The paper's figures are time series and bar charts; this module dumps the
exact per-step data behind them so any plotting tool can regenerate the
visuals without re-running the simulation.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.experiments.runner import ScenarioResult
from repro.workloads.analytics import StepRecord

__all__ = ["records_to_rows", "write_csv", "to_csv_text", "to_json_text", "scenario_summary"]

FIELDS = (
    "step",
    "started_at",
    "io_time",
    "io_bytes",
    "target_rung",
    "prescribed_rung",
    "predicted_bw",
    "measured_bw",
    "weights",
    "probe_used",
    "read_errors",
    "base_time",
    "bucket_times",
)


def records_to_rows(records: Iterable[StepRecord]) -> list[dict]:
    """Step records as dictionaries with native types.

    ``weights`` and ``bucket_times`` stay real lists here (and therefore
    in the JSON output); only the CSV writer flattens them to
    ``";"``-joined cells.
    """
    rows = []
    for r in records:
        rows.append(
            {
                "step": r.step,
                "started_at": r.started_at,
                "io_time": r.io_time,
                "io_bytes": r.io_bytes,
                "target_rung": r.target_rung,
                "prescribed_rung": r.prescribed_rung,
                "predicted_bw": r.predicted_bw,
                "measured_bw": r.measured_bw,
                "weights": list(r.weights),
                "probe_used": r.probe_used,
                "read_errors": r.read_errors,
                "base_time": r.base_time,
                "bucket_times": list(r.bucket_times),
            }
        )
    return rows


def _flatten_row(row: dict) -> dict:
    """CSV cells cannot hold lists: join the sequence fields."""
    flat = dict(row)
    flat["weights"] = ";".join(str(w) for w in row["weights"])
    flat["bucket_times"] = ";".join(f"{t:.6f}" for t in row["bucket_times"])
    return flat


def to_csv_text(records: Iterable[StepRecord]) -> str:
    """Render step records as CSV text (header + one row per step)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=FIELDS)
    writer.writeheader()
    writer.writerows(_flatten_row(row) for row in records_to_rows(records))
    return buf.getvalue()


def write_csv(records: Iterable[StepRecord], path: str) -> None:
    """Write step records to a CSV file."""
    with open(path, "w", newline="") as f:
        f.write(to_csv_text(records))


def to_json_text(records: Iterable[StepRecord], *, indent: int | None = None) -> str:
    """Render step records as a JSON array."""
    return json.dumps(records_to_rows(records), indent=indent)


def scenario_summary(result: ScenarioResult) -> dict:
    """A compact machine-readable summary of a scenario run."""
    return {
        "app": result.config.app,
        "policy": result.config.policy,
        "seed": result.config.seed,
        "steps": len(result.records),
        "mean_io_time": result.mean_io_time,
        "std_io_time": result.std_io_time,
        "mean_target_rung": result.mean_target_rung,
        "mean_outcome_error": result.mean_outcome_error,
        "weight_adjustments": len(result.weight_history),
        "final_time": result.final_time,
    }
