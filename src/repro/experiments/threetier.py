"""Three-tier extension experiment (the hierarchy of the paper's Fig. 3).

The paper evaluates on two tiers (SSD + HDD) but illustrates Tango on a
three-tier hierarchy.  A third tier pays off under **fast-tier capacity
pressure**: when the performance tier cannot hold the whole upper ladder,
the overflow spills onto the contended capacity tier.  Adding an NVMe
tier absorbs that overflow, so mid-accuracy retrievals dodge the
interference entirely.

This experiment constructs a node whose SSD only fits the base plus the
first augmentation bucket, stages with the capacity-aware planner, and
compares two-tier vs three-tier mean I/O time under the Table IV noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import build_ladder_for_app, run_scenario
from repro.apps import make_app
from repro.storage.device import DEVICE_PRESETS, DeviceSpec
from repro.storage.tier import TieredStorage
from repro.util.units import mb_per_s

__all__ = ["ThreeTierResult", "run_threetier"]


@dataclass(frozen=True)
class ThreeTierRow:
    tiers: str
    mean_io_time: float
    std_io_time: float
    capacity_tier_buckets: int


@dataclass(frozen=True)
class ThreeTierResult:
    rows: tuple[ThreeTierRow, ...]

    def cell(self, tiers: str) -> ThreeTierRow:
        for r in self.rows:
            if r.tiers == tiers:
                return r
        raise KeyError(f"no row for {tiers!r}")

    def speedup(self) -> float:
        """Mean-I/O-time ratio two-tier / three-tier."""
        three = self.cell("three-tier").mean_io_time
        if three <= 0:
            return float("inf")
        return self.cell("two-tier").mean_io_time / three

    def format_rows(self) -> str:
        return format_table(
            ["Hierarchy", "Mean I/O (s)", "Std (s)", "Buckets on HDD"],
            [
                (r.tiers, f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}",
                 r.capacity_tier_buckets)
                for r in self.rows
            ],
            title="Extension: third tier under fast-tier capacity pressure "
            "(cross-layer, NRMSE 0.005, p=10)",
        )


def _constrained_specs(ssd_capacity: int, nvme_capacity: int | None) -> list[DeviceSpec]:
    """Slowest-first spec list with capacity-constrained fast tiers."""
    from dataclasses import replace

    hdd = DEVICE_PRESETS["seagate-hdd-2t"]
    ssd = replace(DEVICE_PRESETS["intel-ssd-400"], capacity=ssd_capacity)
    specs = [hdd, ssd]
    if nvme_capacity is not None:
        specs.append(
            DeviceSpec(
                name="nvme-p4510",
                read_bw=mb_per_s(3000),
                write_bw=mb_per_s(2000),
                seek_time=0.00002,
                capacity=nvme_capacity,
                kind="ssd",
            )
        )
    return specs


def run_threetier(
    *,
    app: str = "xgc",
    replications: int = 2,
    max_steps: int = 50,
    seed: int = 0,
) -> ThreeTierResult:
    """Capacity-pressure comparison: two vs three tiers.

    The SSD is sized to hold the base + the loosest buckets only; the
    NVMe tier (when present) is sized to absorb the next bucket.  Staging
    uses the capacity-aware planner, so in the two-tier node the
    mid-accuracy bucket lands on the interfered HDD while in the
    three-tier node it stays fast.
    """
    cfg0 = ScenarioConfig(
        app=app,
        policy="cross-layer",
        decimation_ratio=256,
        # Three non-trivial rungs; the mandated mid rung (0.005) is the
        # one whose tier the third level of storage changes.
        error_bounds=(0.02, 0.005, 0.001),
        prescribed_bound=0.005,
        priority=10.0,
        max_steps=max_steps,
        seed=seed,
    )
    # Size the tiers from the actual ladder (scaled bytes).
    probe_app = make_app(app)
    _, ladder = build_ladder_for_app(
        probe_app,
        grid_shape=cfg0.grid_shape,
        decimation_ratio=cfg0.decimation_ratio,
        metric=cfg0.metric,
        error_bounds=cfg0.error_bounds,
        seed=seed,
    )
    scale = cfg0.size_scale
    sizes = [int(b.nbytes * scale) for b in ladder.buckets]
    base = int(ladder.base_nbytes * scale)
    # SSD: base + every bucket except the two largest; NVMe: the second
    # largest (the mid-accuracy bucket).  The largest always stays on HDD.
    ordered = sorted(range(len(sizes)), key=lambda i: sizes[i])
    largest, second = ordered[-1], ordered[-2]
    ssd_cap = base + sum(s for i, s in enumerate(sizes) if i not in (largest, second))
    ssd_cap = int(ssd_cap * 1.2) + 1024
    nvme_cap = int(sizes[second] * 1.2) + 1024

    rows = []
    for tiers, nvme in (("two-tier", None), ("three-tier", nvme_cap)):
        means, stds = [], []
        hdd_buckets = 0
        for rep in range(replications):
            cfg = cfg0.with_(seed=seed + rep)
            def factory(sim, n=nvme):
                return TieredStorage(sim, _constrained_specs(ssd_cap, n))
            res = run_scenario(cfg, storage_factory=factory, placement="capacity")
            means.append(res.mean_io_time)
            stds.append(res.std_io_time)
            hdd_buckets = sum(
                1
                for m in range(1, res.ladder.num_buckets + 1)
                if res.dataset.tier_of_bucket(m) is res.dataset.storage.slowest
                and res.ladder.bucket(m).cardinality > 0
            )
        rows.append(
            ThreeTierRow(
                tiers=tiers,
                mean_io_time=float(np.mean(means)),
                std_io_time=float(np.mean(stds)),
                capacity_tier_buckets=hdd_buckets,
            )
        )
    return ThreeTierResult(rows=tuple(rows))
