"""The paper's headline claim: I/O performance improved by ~52 % versus
no adaptivity and ~36 % versus single-layer adaptivity.

Derived from the Fig. 8 grid: for each app, the cross-layer's fractional
mean-I/O-time improvement over (a) the no-adaptivity baseline and (b) the
better single layer, averaged over apps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import ALL_APPS
from repro.experiments.fig08 import Fig8Result, run_fig08
from repro.experiments.report import format_table

__all__ = ["HeadlineResult", "run_headline", "headline_from_grid"]


@dataclass(frozen=True)
class HeadlineResult:
    improvement_vs_none: float
    improvement_vs_single: float
    per_app_vs_none: dict[str, float]
    per_app_vs_single: dict[str, float]

    def format_rows(self) -> str:
        rows = [
            (app, f"{100 * self.per_app_vs_none[app]:.0f}%",
             f"{100 * self.per_app_vs_single[app]:.0f}%")
            for app in sorted(self.per_app_vs_none)
        ]
        rows.append(
            ("MEAN", f"{100 * self.improvement_vs_none:.0f}%",
             f"{100 * self.improvement_vs_single:.0f}%")
        )
        return format_table(
            ["App", "vs no adaptivity", "vs best single layer"],
            rows,
            title="Headline: cross-layer I/O-time improvement (paper: 52% / 36%)",
        )


def headline_from_grid(grid: Fig8Result) -> HeadlineResult:
    """Compute the headline percentages from a policy grid result."""
    apps = sorted({r.app for r in grid.rows})
    vs_none: dict[str, float] = {}
    vs_single: dict[str, float] = {}
    for app in apps:
        cross = grid.cell(app, "cross-layer").mean_io_time
        none = grid.cell(app, "no-adaptivity").mean_io_time
        single = min(
            grid.cell(app, "storage-only").mean_io_time,
            grid.cell(app, "app-only").mean_io_time,
        )
        vs_none[app] = 1.0 - cross / none if none > 0 else 0.0
        vs_single[app] = 1.0 - cross / single if single > 0 else 0.0
    return HeadlineResult(
        improvement_vs_none=float(np.mean(list(vs_none.values()))),
        improvement_vs_single=float(np.mean(list(vs_single.values()))),
        per_app_vs_none=vs_none,
        per_app_vs_single=vs_single,
    )


def run_headline(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
) -> HeadlineResult:
    """Run Fig. 8 and derive the headline percentages."""
    grid = run_fig08(apps=apps, replications=replications, max_steps=max_steps, seed=seed)
    return headline_from_grid(grid)
