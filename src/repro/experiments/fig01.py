"""Fig. 1 — motivation: equal blkio weights do not isolate performance.

Three data analytics containers (XGC, CFD, GenASiS) iteratively read
their datasets from one shared 15 k RPM disk with equal weights; the
perceived per-step bandwidth collapses whenever their I/O phases overlap
and recovers when a container reads alone — exactly the paper's Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.containers import Container, ContainerRuntime
from repro.simkernel import Interrupt, Simulation, Timeout
from repro.storage.device import DEVICE_PRESETS, BlockDevice
from repro.storage.filesystem import Filesystem
from repro.util.units import MiB, bytes_to_mb

__all__ = ["Fig1Result", "run_fig01"]


@dataclass(frozen=True)
class Fig1Result:
    """Per-app time series of perceived read bandwidth (MB/s)."""

    times: dict[str, np.ndarray]
    bandwidths: dict[str, np.ndarray]

    def peak_bandwidth(self, app: str) -> float:
        return float(self.bandwidths[app].max())

    def min_bandwidth(self, app: str) -> float:
        return float(self.bandwidths[app].min())

    def interference_drop(self, app: str) -> float:
        """Fractional bandwidth drop between best and worst steps."""
        peak = self.peak_bandwidth(app)
        if peak <= 0:
            return 0.0
        return 1.0 - self.min_bandwidth(app) / peak

    def format_rows(self) -> str:
        lines = ["Fig 1: perceived bandwidth (MB/s) under equal blkio weights"]
        for app, times in self.times.items():
            bws = self.bandwidths[app]
            pairs = " ".join(f"t={t:.0f}:{b:.0f}" for t, b in zip(times, bws))
            lines.append(f"  {app}: {pairs}")
            lines.append(
                f"  {app}: peak={self.peak_bandwidth(app):.0f} "
                f"min={self.min_bandwidth(app):.0f} "
                f"drop={100 * self.interference_drop(app):.0f}%"
            )
        return "\n".join(lines)


def _reader(
    container: Container,
    fs: Filesystem,
    nbytes: int,
    period: float,
    offset: float,
    samples: list[tuple[float, float]],
    max_steps: int,
):
    fname = f"{container.name}/dataset"
    fs.allocate(fname, nbytes)
    try:
        yield Timeout(offset)
        next_deadline = container.sim.now
        for _ in range(max_steps):
            start = container.sim.now
            stats = yield fs.read(container.cgroup, fname)
            elapsed = container.sim.now - start
            samples.append((start, stats.nbytes / elapsed if elapsed > 0 else 0.0))
            next_deadline += period
            yield Timeout(max(0.0, next_deadline - container.sim.now))
    except Interrupt:
        return


def run_fig01(
    *,
    dataset_mb: int = 2048,
    periods: tuple[float, float, float] = (50.0, 60.0, 75.0),
    max_steps: int = 40,
    offsets: tuple[float, float, float] = (0.0, 5.0, 10.0),
) -> Fig1Result:
    """Run the three-analytics equal-weight motivation experiment.

    The three apps use slightly different analysis periods, so their I/O
    phases drift in and out of alignment over time — some steps read
    alone at full disk bandwidth, others overlap and collapse, which is
    precisely the Fig. 1 picture.
    """
    sim = Simulation()
    disk = BlockDevice(sim, DEVICE_PRESETS["seagate-hdd-15k"])
    fs = Filesystem(disk)
    runtime = ContainerRuntime(sim)

    apps = ("xgc", "cfd", "genasis")
    samples: dict[str, list[tuple[float, float]]] = {a: [] for a in apps}
    for app, period, offset in zip(apps, periods, offsets):
        runtime.run(
            app,
            lambda c, a=app, p=period, o=offset: _reader(
                c, fs, dataset_mb * MiB, p, o, samples[a], max_steps
            ),
        )
    sim.run(until=max(periods) * (max_steps + 2))
    runtime.stop_all()

    times = {a: np.asarray([t for t, _ in samples[a]]) for a in apps}
    bws = {a: np.asarray([bytes_to_mb(b) for _, b in samples[a]]) for a in apps}
    return Fig1Result(times=times, bandwidths=bws)
