"""Fig. 16 — weak scaling of Tango (1–4 nodes).

Tango's recomposition is embarrassingly parallel: each node holds its own
ephemeral storage and adapts independently, with no communication.  Weak
scaling therefore runs one independent single-node scenario per node (in
separate OS processes, mirroring the paper's 4-node Chameleon run) and
reports the mean I/O time across nodes — expected to stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table

__all__ = ["Fig16Result", "run_fig16", "run_node"]


def run_node(args: tuple[int, int, int]) -> tuple[float, float]:
    """Run one node's scenario; module-level so it pickles for mp.Pool."""
    node_index, seed, max_steps = args
    from repro.experiments.runner import run_scenario

    cfg = ScenarioConfig(
        app="xgc",
        policy="cross-layer",
        prescribed_bound=0.01,
        priority=10.0,
        max_steps=max_steps,
        seed=seed + node_index,
    )
    res = run_scenario(cfg)
    return res.mean_io_time, res.std_io_time


@dataclass(frozen=True)
class Fig16Row:
    nodes: int
    mean_io_time: float
    std_io_time: float


@dataclass(frozen=True)
class Fig16Result:
    rows: tuple[Fig16Row, ...]

    def scaling_flatness(self) -> float:
        """max/min of the mean I/O time across node counts (1.0 = flat)."""
        means = [r.mean_io_time for r in self.rows]
        return max(means) / min(means) if min(means) > 0 else float("inf")

    def format_rows(self) -> str:
        return format_table(
            ["# nodes", "Mean I/O (s)", "Std (s)"],
            [(r.nodes, f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}") for r in self.rows],
            title="Fig 16: weak scaling (p=10, NRMSE 0.01)",
        )


def run_fig16(
    *,
    node_counts: tuple[int, ...] = (1, 2, 4),
    max_steps: int = 40,
    seed: int = 0,
    parallel: bool = True,
) -> Fig16Result:
    """Weak scaling: per node count, average the per-node mean I/O times.

    ``parallel=False`` runs nodes sequentially in-process (useful in
    constrained test environments); results are identical because nodes
    share no state.

    Every node count evaluates the *same* set of per-node scenarios
    (seeds ``seed … seed + max(node_counts) − 1``), executed in batches of
    ``n`` concurrent nodes — the weak-scaling question is whether adding
    nodes changes per-node I/O time, so the workload per node must be
    held fixed.
    """
    total = max(node_counts)
    rows: list[Fig16Row] = []
    for n in node_counts:
        jobs = [(i, seed, max_steps) for i in range(total)]
        executor = SweepExecutor(
            workers=min(n, 4) if parallel and n > 1 else 1,
            chunksize=max(1, total // n),
        )
        results = executor.map(run_node, jobs)
        means = [m for m, _ in results]
        stds = [s for _, s in results]
        rows.append(
            Fig16Row(
                nodes=n,
                mean_io_time=float(np.mean(means)),
                std_io_time=float(np.mean(stds)),
            )
        )
    return Fig16Result(rows=tuple(rows))
