"""Plain-text table/series formatting for experiment outputs.

Every experiment renders through these helpers so the benches print
uniform, paper-style rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "pct", "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, fmt: str = "{:.2f}"
) -> str:
    """Render an (x, y) series on one labelled line."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    pairs = ", ".join(f"{_cell(x)}:{fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def pct(fraction: float) -> str:
    """Format a fraction as a signed percentage."""
    return f"{100.0 * fraction:+.0f}%"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character sketch of a series (min→max scaled).

    Useful for eyeballing per-step I/O times or bandwidth traces in a
    terminal without a plotting stack.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_BLOCKS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
