"""Fig. 15 — weight assignment across time.

Records how the analytics container's blkio weight is adjusted during an
XGC run (p = 10, target NRMSE 0.01) over the paper's 1800–1950 s window.
Expected shape: within one analysis step the weight starts high for the
low-accuracy bucket and is lowered as the accuracy level rises — the
design that favours low accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

__all__ = ["Fig15Result", "run_fig15"]


@dataclass(frozen=True)
class Fig15Result:
    #: (time, weight) pairs within the observation window.
    window: tuple[tuple[float, int], ...]
    #: Full weight history for context.
    full_history: tuple[tuple[float, int], ...]
    window_start: float
    window_end: float

    def weights_within_step(self) -> list[list[int]]:
        """Group window weights into per-step sequences (gap > 30 s splits)."""
        groups: list[list[tuple[float, int]]] = []
        for t, w in self.window:
            if groups and t - groups[-1][-1][0] <= 30.0:
                groups[-1].append((t, w))
            else:
                groups.append([(t, w)])
        return [[w for _, w in g] for g in groups]

    def format_rows(self) -> str:
        lines = [
            f"Fig 15: weight assignment, {self.window_start:.0f}-{self.window_end:.0f} s "
            "(XGC, p=10, NRMSE 0.01)"
        ]
        for t, w in self.window:
            lines.append(f"  t={t:7.1f}s  weight={w}")
        return "\n".join(lines)


def run_fig15(
    *,
    window: tuple[float, float] = (1800.0, 1950.0),
    max_steps: int = 40,
    seed: int = 0,
) -> Fig15Result:
    """Run the cross-layer XGC scenario and slice its weight history."""
    start, end = window
    if end <= start:
        raise ValueError(f"window end must exceed start, got {window}")
    needed_steps = int(end / 60.0) + 2
    cfg = ScenarioConfig(
        app="xgc",
        policy="cross-layer",
        decimation_ratio=256,
        prescribed_bound=0.01,
        priority=10.0,
        max_steps=max(max_steps, needed_steps),
        # The paper's Fig. 15: the container weight is proportional to the
        # *total* augmentation cardinality, so within a step only the
        # accuracy term varies and the trace falls as accuracy rises.
        weight_cardinality="total",
        seed=seed,
    )
    res = run_scenario(cfg)
    full = tuple(res.weight_history)
    in_window = tuple((t, w) for t, w in full if start <= t <= end)
    return Fig15Result(
        window=in_window, full_history=full, window_start=start, window_end=end
    )
