"""Fig. 12 — performance vs the number of interfering containers.

Sweeps the noise count 1…6, injecting Table IV containers in the paper's
order (#1, #2, #3, then incrementally #4, #5, #6), at priority 10 and
target NRMSE 0.01.  Expected shape: the cross-layer stays nearly flat
while storage-only adaptivity's mean and variance degrade with noise
intensity, widening the cross-layer's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table
from repro.workloads.noise import TABLE_IV_NOISE

__all__ = ["Fig12Result", "run_fig12"]


@dataclass(frozen=True)
class Fig12Row:
    policy: str
    noise_count: int
    mean_io_time: float
    std_io_time: float


@dataclass(frozen=True)
class Fig12Result:
    rows: tuple[Fig12Row, ...]

    def series(self, policy: str) -> tuple[list[int], list[float]]:
        rows = sorted(
            (r for r in self.rows if r.policy == policy), key=lambda r: r.noise_count
        )
        return [r.noise_count for r in rows], [r.mean_io_time for r in rows]

    def degradation(self, policy: str) -> float:
        """Mean-I/O-time growth factor from the fewest to the most noises."""
        _, means = self.series(policy)
        if not means or means[0] <= 0:
            return 1.0
        return means[-1] / means[0]

    def format_rows(self) -> str:
        return format_table(
            ["Policy", "# noises", "Mean I/O (s)", "Std (s)"],
            [
                (r.policy, r.noise_count, f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}")
                for r in self.rows
            ],
            title="Fig 12: cross-layer vs noise intensity (NRMSE 0.01, p=10)",
        )


def run_fig12(
    *,
    policies: tuple[str, ...] = ("storage-only", "cross-layer"),
    noise_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
    workers: int | str | None = 1,
) -> Fig12Result:
    """The noise-intensity sweep."""
    for count in noise_counts:
        if not 1 <= count <= len(TABLE_IV_NOISE):
            raise ValueError(f"noise count must be in [1, {len(TABLE_IV_NOISE)}]")
    cells = [(policy, count) for policy in policies for count in noise_counts]
    configs = [
        ScenarioConfig(
            policy=policy,
            noise=TABLE_IV_NOISE[:count],
            prescribed_bound=0.01,
            priority=10.0,
            max_steps=max_steps,
            seed=seed + rep,
        )
        for policy, count in cells
        for rep in range(replications)
    ]
    summaries = SweepExecutor(workers).run_scenarios(configs)
    rows: list[Fig12Row] = []
    for i, (policy, count) in enumerate(cells):
        chunk = summaries[i * replications : (i + 1) * replications]
        rows.append(
            Fig12Row(
                policy=policy,
                noise_count=count,
                mean_io_time=float(np.mean([s.mean_io_time for s in chunk])),
                std_io_time=float(np.mean([s.std_io_time for s in chunk])),
            )
        )
    return Fig12Result(rows=tuple(rows))
