"""Multi-tenant noisy-neighbor scenario with declarative SLOs.

Two adaptive analytics tenants — a latency-sensitive ``prod`` and a
best-effort ``batch`` — share a node with the Table IV checkpointing
noise, and the run is scored against per-tenant SLO targets.  The same
workload executes twice:

* **baseline** — the default stage stack with *observation-only*
  policies (just SLO targets, no enforcement): the legacy mechanism,
  plus scoring.  This is what a noisy neighbor does to an unprotected
  tenant.
* **qos** — a declarative policy set on the ``("cgroup", "blkio",
  "priority")`` stack: the loudest checkpointers are token-bucket
  rate-shaped, tenants carry priority classes, and the priority
  schedule stage admission-controls the capacity device.

The result carries per-tenant step timings, the SLO board's
per-request violation counts, and per-stage data-plane decision
counters (collected through :mod:`repro.obs`), exported end-to-end via
``repro figure qosplane`` / ``repro export qosplane``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataplane import QosPolicy, SloTarget
from repro.engine.session import ScenarioSession
from repro.experiments.config import PRIORITY_HIGH, PRIORITY_LOW, ScenarioConfig
from repro.experiments.report import format_table
from repro.obs import OBS, enabled_scope
from repro.util.units import MiB, mb_per_s

__all__ = ["QosPlaneRow", "QosPlaneResult", "run_qosplane", "format_rows"]

#: SLO targets shared by both runs (scored, never enforced).
PROD_SLO = SloTarget("p99_latency", 5.0)
BATCH_SLO = SloTarget("bandwidth_floor", mb_per_s(2))

#: Observation-only policies: classify + score, enforce nothing.
BASELINE_POLICIES: tuple = (
    ("prod", QosPolicy(slo=PROD_SLO)),
    ("batch", QosPolicy(slo=BATCH_SLO)),
)

#: The declarative QoS contract: priority classes on the tenants,
#: admission control on the shared device via the "priority" schedule
#: stage, and burst-credit token-bucket shaping on the loudest
#: checkpointer (noise-6 writes 1 GiB every 120 s; shaping admits a
#: 512 MiB burst then paces at 15 MB/s, so its checkpoints stop
#: monopolising admission slots exactly when the analytics read).
#: Note what is *not* here: no write caps.  A device-level cap keeps a
#: slow checkpoint active for longer, which raises the HDD's
#: concurrency thrash for everyone — shaping + admission control reduce
#: the *stream count*, which is what the Fig. 1 interference model
#: actually punishes.
QOS_POLICIES: tuple = (
    ("prod", QosPolicy(priority="high", slo=PROD_SLO)),
    ("batch", QosPolicy(priority="low", slo=BATCH_SLO)),
    ("noise-4", QosPolicy(priority="low")),
    ("noise-5", QosPolicy(priority="low")),
    (
        "noise-6",
        QosPolicy(rate_bps=mb_per_s(15), burst_bytes=512 * MiB, priority="low"),
    ),
)


@dataclass(frozen=True)
class QosPlaneRow:
    """One (scenario, tenant) outcome."""

    scenario: str
    tenant: str
    mean_io_time: float
    p99_io_time: float
    completions: int
    violations: int
    p99_latency_s: float
    slo_kind: str


@dataclass
class QosPlaneResult:
    rows: list[QosPlaneRow] = field(default_factory=list)
    #: Per-scenario SLO board reports (tenant -> summary dict).
    slo: dict[str, dict] = field(default_factory=dict)
    #: Per-scenario data-plane decision counters
    #: (``metric name -> {label string: value}``).
    stage_counters: dict[str, dict] = field(default_factory=dict)

    def tenant_row(self, scenario: str, tenant: str) -> QosPlaneRow:
        for row in self.rows:
            if row.scenario == scenario and row.tenant == tenant:
                return row
        raise KeyError(f"no row for ({scenario!r}, {tenant!r})")

    def violation_total(self, scenario: str) -> int:
        return sum(r["violations"] for r in self.slo[scenario].values())

    def format_rows(self) -> str:
        return format_rows(self)


def _counter_state() -> dict[str, dict]:
    """Current absolute values of every ``dataplane.*`` counter series."""
    reg = OBS.registry
    state: dict[str, dict] = {}
    for name in reg.names():
        if name.startswith("dataplane."):
            metric = reg.get(name)
            if metric.kind == "counter":
                state[name] = dict(metric.series())
    return state


def _counter_delta(before: dict, after: dict) -> dict[str, dict[str, float]]:
    """Per-series growth between two states, with readable label keys."""
    delta: dict[str, dict[str, float]] = {}
    for name, series in after.items():
        prior = before.get(name, {})
        for key, value in series.items():
            grown = value - prior.get(key, 0.0)
            if grown:
                label = ",".join(f"{k}={v}" for k, v in key) or "total"
                delta.setdefault(name, {})[label] = grown
    return delta


def _run_one(
    scenario: str,
    policies: tuple,
    stack: tuple[str, str, str],
    max_inflight: int | None,
    *,
    max_steps: int,
    seed: int,
    result: QosPlaneResult,
) -> None:
    config = ScenarioConfig(
        max_steps=max_steps,
        seed=seed,
        qos_policies=policies,
        stage_stack=stack,
        max_inflight=max_inflight,
    )
    # Per-stage decision counters are part of this figure's output, so
    # the run collects them regardless of the ambient OBS state (the
    # scope restores it; deltas keep an outer --metrics-out run honest).
    with enabled_scope():
        before = _counter_state()
        session = ScenarioSession(config)
        session.launch_noise()
        for name, priority in (("prod", PRIORITY_HIGH), ("batch", PRIORITY_LOW)):
            _, _, ladder = session.build_ladder()
            dataset = session.stage(f"{name}-data", ladder)
            controller = session.build_controller(ladder, priority=priority)
            session.add_analytics(name, dataset, controller)
        session.run(chunk=None)
        result.stage_counters[scenario] = _counter_delta(before, _counter_state())

    board = session.dataplane.slo
    result.slo[scenario] = board.report()
    for name in ("prod", "batch"):
        records = session.drivers[name].records
        io_times = [r.io_time for r in records]
        tracker = board.trackers.get(name)
        result.rows.append(
            QosPlaneRow(
                scenario=scenario,
                tenant=name,
                mean_io_time=float(np.mean(io_times)) if io_times else 0.0,
                p99_io_time=float(np.percentile(io_times, 99)) if io_times else 0.0,
                completions=tracker.completions if tracker else 0,
                violations=tracker.violations if tracker else 0,
                p99_latency_s=tracker.p99_latency() if tracker else 0.0,
                slo_kind=tracker.target.kind if tracker and tracker.target else "-",
            )
        )


def run_qosplane(*, max_steps: int = 20, seed: int = 0) -> QosPlaneResult:
    """Baseline vs declarative-QoS runs of the noisy-neighbor scenario."""
    result = QosPlaneResult()
    _run_one(
        "baseline",
        BASELINE_POLICIES,
        ("cgroup", "blkio", "fifo"),
        None,
        max_steps=max_steps,
        seed=seed,
        result=result,
    )
    _run_one(
        "qos",
        QOS_POLICIES,
        ("cgroup", "blkio", "priority"),
        3,
        max_steps=max_steps,
        seed=seed,
        result=result,
    )
    return result


def format_rows(result: QosPlaneResult) -> str:
    """Plain-text report: per-tenant table + stage decision summary."""
    table = format_table(
        ["scenario", "tenant", "mean io (s)", "p99 io (s)", "reqs", "SLO", "violations"],
        [
            (
                r.scenario,
                r.tenant,
                f"{r.mean_io_time:.2f}",
                f"{r.p99_io_time:.2f}",
                r.completions,
                r.slo_kind,
                r.violations,
            )
            for r in result.rows
        ],
        title="QoS data plane: noisy neighbor with per-tenant SLOs",
    )
    lines = [table, "", "per-stage decisions:"]
    for scenario in sorted(result.stage_counters):
        lines.append(f"  [{scenario}]")
        counters = result.stage_counters[scenario]
        for name in sorted(counters):
            total = sum(counters[name].values())
            lines.append(f"    {name:38s} {total:10.0f}")
    return "\n".join(lines)
