"""Fig. 8 — cross-layer vs single-layer, no error control.

Average I/O time and variation (std, the paper's error bars) for the
three analytics under the four adaptivity schemes, with the augmentation
driven purely by the estimated storage load.  Expected shape:
no-adaptivity worst (highest mean and variation), then storage-only,
then app-only, cross-layer best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import ALL_APPS
from repro.core.controller import POLICY_NAMES
from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table

__all__ = ["PolicyAppResult", "Fig8Result", "run_fig08", "run_policy_grid"]


@dataclass(frozen=True)
class PolicyAppResult:
    app: str
    policy: str
    mean_io_time: float
    std_io_time: float
    mean_outcome_error: float
    mean_target_rung: float
    replications: int


@dataclass(frozen=True)
class Fig8Result:
    rows: tuple[PolicyAppResult, ...]
    error_control: bool

    def cell(self, app: str, policy: str) -> PolicyAppResult:
        for r in self.rows:
            if r.app == app and r.policy == policy:
                return r
        raise KeyError(f"no cell for app={app!r} policy={policy!r}")

    def improvement(self, app: str, policy: str, versus: str = "no-adaptivity") -> float:
        """Fractional mean-I/O-time improvement of ``policy`` over ``versus``."""
        base = self.cell(app, versus).mean_io_time
        if base <= 0:
            return 0.0
        return 1.0 - self.cell(app, policy).mean_io_time / base

    def format_rows(self) -> str:
        title = (
            "Fig 8: cross-layer vs single-layer (no error control)"
            if not self.error_control
            else "Fig 9: interference mitigation with error control"
        )
        return format_table(
            ["App", "Policy", "Mean I/O (s)", "Std (s)", "Outcome err", "Mean rung"],
            [
                (r.app, r.policy, f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}",
                 f"{r.mean_outcome_error:.4f}", f"{r.mean_target_rung:.2f}")
                for r in self.rows
            ],
            title=title,
        )


def run_policy_grid(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    policies: tuple[str, ...] = POLICY_NAMES,
    error_control: bool,
    base_config: ScenarioConfig | None = None,
    replications: int = 3,
    max_steps: int = 60,
    workers: int | str | None = 1,
) -> Fig8Result:
    """Run the (app × policy) grid with seeded replications.

    ``workers`` fans the grid out over a process pool (``"auto"`` = all
    CPUs); results are identical to the serial default.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    base = base_config if base_config is not None else ScenarioConfig()
    cells = [(app, policy) for app in apps for policy in policies]
    configs = [
        base.with_(
            app=app,
            policy=policy,
            error_control=error_control,
            max_steps=max_steps,
            seed=base.seed + rep,
        )
        for app, policy in cells
        for rep in range(replications)
    ]
    summaries = SweepExecutor(workers).run_scenarios(configs, outcome_error=True)
    rows: list[PolicyAppResult] = []
    for i, (app, policy) in enumerate(cells):
        chunk = summaries[i * replications : (i + 1) * replications]
        rows.append(
            PolicyAppResult(
                app=app,
                policy=policy,
                mean_io_time=float(np.mean([s.mean_io_time for s in chunk])),
                std_io_time=float(np.mean([s.std_io_time for s in chunk])),
                mean_outcome_error=float(np.mean([s.mean_outcome_error for s in chunk])),
                mean_target_rung=float(np.mean([s.mean_target_rung for s in chunk])),
                replications=replications,
            )
        )
    return Fig8Result(rows=tuple(rows), error_control=error_control)


def run_fig08(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
    workers: int | str | None = 1,
) -> Fig8Result:
    """The Fig. 8 grid: all policies × all apps, no error control."""
    base = ScenarioConfig(seed=seed)
    return run_policy_grid(
        apps=apps,
        error_control=False,
        base_config=base,
        replications=replications,
        max_steps=max_steps,
        workers=workers,
    )
