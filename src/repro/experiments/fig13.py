"""Fig. 13 — weight-function ablation.

The latency to retrieve the augmentation elevating accuracy to
ε₁ = 0.01 (NRMSE) for a high-priority (p = 10) analytics, as the weight
function progressively incorporates: (1) cardinality only; (2) cardinality
+ priority; (3) cardinality + priority + accuracy.  The app-only policy
(no weight support) is the baseline.  Expected shape: latency improves
as terms are added.  (Per the paper's caption, single-layer *storage*
adaptivity is identical to the cardinality-only variant.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table

__all__ = ["Fig13Result", "run_fig13", "VARIANTS"]

#: Ablation variants: (label, policy, use_priority, use_accuracy).
VARIANTS: tuple[tuple[str, str, bool, bool], ...] = (
    ("single-layer (app)", "app-only", True, True),
    ("cardinality", "cross-layer", False, False),
    ("cardinality+priority", "cross-layer", True, False),
    ("cardinality+priority+accuracy", "cross-layer", True, True),
)


@dataclass(frozen=True)
class Fig13Row:
    variant: str
    mean_io_time: float
    std_io_time: float


@dataclass(frozen=True)
class Fig13Result:
    rows: tuple[Fig13Row, ...]

    def latency(self, variant: str) -> float:
        for r in self.rows:
            if r.variant == variant:
                return r.mean_io_time
        raise KeyError(f"no variant {variant!r}")

    def format_rows(self) -> str:
        return format_table(
            ["Weight function", "Mean latency (s)", "Std (s)"],
            [(r.variant, f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}") for r in self.rows],
            title="Fig 13: latency to elevate accuracy to 0.01 NRMSE (p=10)",
        )


def run_fig13(
    *,
    app: str = "xgc",
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
    workers: int | str | None = 1,
) -> Fig13Result:
    """Run each weight-function variant.

    The ladder's tightest bound is the Fig. 13 target (0.01), so every
    step's I/O time *is* the latency to elevate the accuracy to 0.01.
    """
    configs = [
        ScenarioConfig(
            app=app,
            policy=policy,
            # Deep decimation keeps the base accuracy below the 0.01
            # target, so elevating to eps_1 genuinely requires I/O.
            decimation_ratio=256,
            error_bounds=(0.1, 0.01),
            prescribed_bound=0.01,
            priority=10.0,
            max_steps=max_steps,
            weight_use_priority=use_priority,
            weight_use_accuracy=use_accuracy,
            seed=seed + rep,
        )
        for _, policy, use_priority, use_accuracy in VARIANTS
        for rep in range(replications)
    ]
    summaries = SweepExecutor(workers).run_scenarios(configs)
    rows: list[Fig13Row] = []
    for i, (label, _, _, _) in enumerate(VARIANTS):
        chunk = summaries[i * replications : (i + 1) * replications]
        rows.append(
            Fig13Row(
                variant=label,
                mean_io_time=float(np.mean([s.mean_io_time for s in chunk])),
                std_io_time=float(np.mean([s.std_io_time for s in chunk])),
            )
        )
    return Fig13Result(rows=tuple(rows))
