"""A full post-processing campaign: everything composed.

The paper's target scenario end to end, at campaign length: per-timestep
evolving analysis data (staged as a time series), a churning population
of co-located checkpointing jobs, optionally a capacity-tier slowdown
mid-campaign, and the cross-layer controller adapting throughout.  This
is the closest thing in the repository to "a week on the cluster".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps import make_app
from repro.apps.synthetic import field_time_series
from repro.core.error_control import ErrorMetric, build_ladder
from repro.core.refactor import decompose, levels_for_decimation
from repro.engine.session import ScenarioSession, make_weight_function
from repro.experiments.config import (
    DEFAULTS,
    ScenarioConfig,
    _validate_controller_fields,
    _validate_dataplane_fields,
)
from repro.experiments.report import format_table, sparkline
from repro.util.validation import rename_deprecated, warn_deprecated
from repro.workloads.analytics import StepRecord
from repro.workloads.churn import ChurnSpec

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-scale scenario parameters."""

    app: str = "xgc"
    policy: str = "cross-layer"
    steps: int = 120
    period: float = 60.0
    timeseries_window: int = 8
    decimation_ratio: int = 16
    #: Accuracy-ladder rung error bounds (canonical spelling; the legacy
    #: ``ladder_bounds`` keyword/attribute still works via a shim).
    error_bounds: tuple[float, ...] = (0.1, 0.01, 0.001)
    prescribed_bound: float = 0.01
    priority: float = 10.0
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    #: When set, the capacity tier drops to this speed factor at the
    #: campaign's midpoint (an aging/failing disk).
    degrade_to: float | None = None
    #: Fault campaign name from the FAULT_CAMPAIGNS registry, or None.
    faults: str | None = None
    estimation_interval: int = DEFAULTS.estimation_interval
    #: QoS data-plane stage stack / per-tenant policies / admission limit
    #: (same semantics as the ScenarioConfig fields — campaigns are a
    #: config axis for the data plane too).
    stage_stack: tuple[str, str, str] = ("cgroup", "blkio", "fifo")
    qos_policies: tuple = ()
    max_inflight: int | None = None
    #: Adaptation controller / tuning overrides (same semantics as the
    #: ScenarioConfig fields — the controller is a campaign axis too).
    controller: str = "tango"
    controller_params: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 2:
            raise ValueError(f"steps must be >= 2, got {self.steps}")
        if self.timeseries_window < 1:
            raise ValueError(
                f"timeseries_window must be >= 1, got {self.timeseries_window}"
            )
        if self.degrade_to is not None and not 0.0 < self.degrade_to <= 1.0:
            raise ValueError(f"degrade_to must be in (0, 1], got {self.degrade_to}")
        if self.faults is not None:
            from repro.engine.registry import FAULT_CAMPAIGNS

            if self.faults not in FAULT_CAMPAIGNS:
                raise ValueError(
                    f"unknown fault campaign {self.faults!r}; "
                    f"expected one of {FAULT_CAMPAIGNS.names()}"
                )
        _validate_controller_fields(self)
        _validate_dataplane_fields(self)


# ``ladder_bounds`` → ``error_bounds`` migration shim (see ScenarioConfig).
_campaign_config_init = CampaignConfig.__init__


def _campaign_config_init_shim(self, *args, **kwargs):
    rename_deprecated(
        kwargs, {"ladder_bounds": "error_bounds"}, context="CampaignConfig"
    )
    _campaign_config_init(self, *args, **kwargs)


_campaign_config_init_shim.__wrapped__ = _campaign_config_init
CampaignConfig.__init__ = _campaign_config_init_shim


def _campaign_ladder_bounds_compat(self) -> tuple[float, ...]:
    warn_deprecated(
        "CampaignConfig.ladder_bounds is deprecated; use error_bounds"
    )
    return self.error_bounds


CampaignConfig.ladder_bounds = property(_campaign_ladder_bounds_compat)


@dataclass
class CampaignResult:
    config: CampaignConfig
    records: list[StepRecord]
    estimation_diagnostics: dict[str, float]
    final_time: float

    def _require_records(self, what: str) -> None:
        if not self.records:
            raise ValueError(
                f"campaign produced no step records; {what} is undefined "
                "(the analytics never completed a step — check steps and "
                "the run horizon)"
            )

    @property
    def io_times(self) -> np.ndarray:
        return np.asarray([r.io_time for r in self.records])

    @property
    def mean_io_time(self) -> float:
        self._require_records("mean_io_time")
        return float(self.io_times.mean())

    def half_means(self) -> tuple[float, float]:
        """Mean I/O time of the first and second campaign halves."""
        self._require_records("half_means")
        half = len(self.records) // 2
        return (
            float(self.io_times[:half].mean()),
            float(self.io_times[half:].mean()),
        )

    @property
    def mean_target_rung(self) -> float:
        return float(np.mean([r.target_rung for r in self.records]))

    def rung_half_means(self) -> tuple[float, float]:
        rungs = np.asarray([r.target_rung for r in self.records])
        half = len(rungs) // 2
        return float(rungs[:half].mean()), float(rungs[half:].mean())

    def format_rows(self) -> str:
        first, second = self.half_means()
        r1, r2 = self.rung_half_means()
        table = format_table(
            ["Metric", "First half", "Second half"],
            [
                ("mean I/O time (s)", f"{first:.2f}", f"{second:.2f}"),
                ("mean rung", f"{r1:.2f}", f"{r2:.2f}"),
            ],
            title=(
                f"Campaign: {self.config.app}/{self.config.policy}, "
                f"{len(self.records)} steps, churn "
                f"{'+ degradation' if self.config.degrade_to else ''}"
            ),
        )
        return (
            table
            + f"\n  io sparkline  : {sparkline(self.io_times)}"
            + f"\n  rung sparkline: {sparkline([r.target_rung for r in self.records])}"
            + f"\n  estimator rel. MAE: {self.estimation_diagnostics.get('relative_mae', float('nan')):.2f}"
        )


def _scenario_config(cfg: CampaignConfig) -> ScenarioConfig:
    """The campaign's knobs expressed as the session's scenario config."""
    return ScenarioConfig(
        app=cfg.app,
        policy=cfg.policy,
        period=cfg.period,
        max_steps=cfg.steps,
        decimation_ratio=cfg.decimation_ratio,
        error_bounds=cfg.error_bounds,
        prescribed_bound=cfg.prescribed_bound,
        priority=cfg.priority,
        estimation_interval=cfg.estimation_interval,
        faults=cfg.faults,
        stage_stack=cfg.stage_stack,
        qos_policies=cfg.qos_policies,
        max_inflight=cfg.max_inflight,
        controller=cfg.controller,
        controller_params=cfg.controller_params,
        seed=cfg.seed,
    )


def run_campaign(config: CampaignConfig | None = None) -> CampaignResult:
    """Run a campaign (deterministic per seed)."""
    cfg = config if config is not None else CampaignConfig()
    app = make_app(cfg.app)
    base_field = app.generate(DEFAULTS.grid_shape, seed=cfg.seed)
    fields = field_time_series(base_field, cfg.timeseries_window, seed=cfg.seed + 1)
    levels = levels_for_decimation(base_field.shape, cfg.decimation_ratio)
    ladders = [
        build_ladder(decompose(f, levels), list(cfg.error_bounds), ErrorMetric.NRMSE)
        for f in fields
    ]

    session = ScenarioSession(_scenario_config(cfg))
    session.launch_churn(cfg.churn)
    if cfg.degrade_to is not None:
        session.degrade_capacity_tier(cfg.steps * cfg.period / 2.0, cfg.degrade_to)
    if cfg.faults is not None:
        session.apply_faults(cfg.faults)

    series = session.stage_series(f"{cfg.app}-campaign", ladders)
    reference = series.ladder
    # Campaign quirk, kept: storage-only gets the *full* weight function
    # here (not the cardinality-only calibration single-node runs use).
    weight_fn = (
        make_weight_function(reference)
        if cfg.policy in ("cross-layer", "storage-only")
        else None
    )
    controller = session.build_controller(
        reference,
        weight_fn=weight_fn,
        prescribed_bound=cfg.prescribed_bound,
        weight_cardinality="bucket",
    )
    driver = session.add_analytics("campaign-analytics", series, controller)
    final_time = session.run(horizon=cfg.steps * cfg.period * 3.0)

    return CampaignResult(
        config=cfg,
        records=list(driver.records),
        estimation_diagnostics=controller.estimation_diagnostics(),
        final_time=final_time,
    )
