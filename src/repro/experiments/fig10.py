"""Fig. 10 — data quality evaluated through the analysis results.

At a loose error bound (ε = 0.1 NRMSE), priority 10, and an extreme
decimation ratio (8192), compare the relative error of the analysis
outcome under: cross-layer, single-layer with application adaptivity,
and no augmentation at all (base from SSD only — the worst-quality
case).  Expected shape: cross-layer ≤ app-only < no augmentation,
because the cross-layer's storage support lets it retrieve more
augmentations for the same interference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps import ALL_APPS, make_app
from repro.core.refactor import decompose, levels_for_decimation, reconstruct_base_only
from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario

__all__ = ["Fig10Result", "run_fig10"]

LOOSE_BOUND = 0.1
DECIMATION = 8192
#: Ladder used at the extreme decimation: rungs below and at the bound.
LADDER_BOUNDS = (0.2, 0.1, 0.05, 0.01)


@dataclass(frozen=True)
class Fig10Row:
    app: str
    scheme: str
    outcome_error: float
    mean_io_time: float


@dataclass(frozen=True)
class Fig10Result:
    rows: tuple[Fig10Row, ...]

    def cell(self, app: str, scheme: str) -> Fig10Row:
        for r in self.rows:
            if r.app == app and r.scheme == scheme:
                return r
        raise KeyError(f"no cell for app={app!r} scheme={scheme!r}")

    def format_rows(self) -> str:
        return format_table(
            ["App", "Scheme", "Outcome rel. err", "Mean I/O (s)"],
            [
                (r.app, r.scheme, f"{r.outcome_error:.4f}", f"{r.mean_io_time:.2f}")
                for r in self.rows
            ],
            title=f"Fig 10: analysis-outcome quality (eps={LOOSE_BOUND} NRMSE, "
            f"decimation {DECIMATION}, p=10)",
        )


@dataclass(frozen=True)
class GenasisQualityRow:
    scheme: str
    ssim: float
    dice: float


@dataclass(frozen=True)
class GenasisQualityResult:
    """SSIM + Dice of the GenASiS rendering per scheme (the two metrics
    Section IV-A names for GenASiS)."""

    rows: tuple[GenasisQualityRow, ...]

    def cell(self, scheme: str) -> GenasisQualityRow:
        for r in self.rows:
            if r.scheme == scheme:
                return r
        raise KeyError(f"no row for scheme {scheme!r}")

    def format_rows(self) -> str:
        return format_table(
            ["Scheme", "SSIM", "Dice"],
            [(r.scheme, f"{r.ssim:.4f}", f"{r.dice:.4f}") for r in self.rows],
            title=f"Fig 10 (GenASiS rendering quality, eps={LOOSE_BOUND} NRMSE, "
            f"decimation {DECIMATION})",
        )


def run_fig10_genasis_quality(
    *,
    max_steps: int = 40,
    seed: int = 0,
) -> GenasisQualityResult:
    """SSIM and Dice of the core-collapse rendering per retrieval scheme.

    The reduced representation each scheme ends up analysing is scored
    against the original with the paper's two GenASiS metrics.
    """
    from repro.apps.genasis import GenASiSRendering

    app = GenASiSRendering()
    field = app.generate(seed=seed)
    levels = levels_for_decimation(field.shape, DECIMATION)
    dec = decompose(field, levels)

    rows: list[GenasisQualityRow] = []
    base_only = reconstruct_base_only(dec)
    q = app.quality(field, base_only)
    rows.append(GenasisQualityRow(scheme="no-augmentation", ssim=q.ssim, dice=q.dice))

    for policy in ("app-only", "cross-layer"):
        cfg = ScenarioConfig(
            app="genasis",
            policy=policy,
            decimation_ratio=DECIMATION,
            error_bounds=LADDER_BOUNDS,
            prescribed_bound=LOOSE_BOUND,
            priority=10.0,
            max_steps=max_steps,
            seed=seed,
        )
        res = run_scenario(cfg)
        # Score the representation of the *median* step's rung: the
        # rendering a scientist typically sees during the campaign.
        rungs = sorted(r.target_rung for r in res.records)
        typical = rungs[len(rungs) // 2]
        approx = res.ladder.reconstruct(typical)
        q = res.app.quality(res.original, approx)
        rows.append(GenasisQualityRow(scheme=policy, ssim=q.ssim, dice=q.dice))
    return GenasisQualityResult(rows=tuple(rows))


POLICIES = ("app-only", "cross-layer")


def run_fig10(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    replications: int = 2,
    max_steps: int = 60,
    seed: int = 0,
    workers: int | str | None = 1,
) -> Fig10Result:
    """Quality comparison: cross-layer vs app-only vs no augmentation."""
    cells = [(app_name, policy) for app_name in apps for policy in POLICIES]
    configs = [
        ScenarioConfig(
            app=app_name,
            policy=policy,
            decimation_ratio=DECIMATION,
            error_bounds=LADDER_BOUNDS,
            prescribed_bound=LOOSE_BOUND,
            priority=10.0,
            max_steps=max_steps,
            seed=seed + rep,
        )
        for app_name, policy in cells
        for rep in range(replications)
    ]
    summaries = SweepExecutor(workers).run_scenarios(configs, outcome_error=True)

    rows: list[Fig10Row] = []
    for app_name in apps:
        # No augmentation: reconstruct from the base representation only.
        app = make_app(app_name)
        field = app.generate(seed=seed)
        levels = levels_for_decimation(field.shape, DECIMATION)
        dec = decompose(field, levels)
        base_only = reconstruct_base_only(dec)
        rows.append(
            Fig10Row(
                app=app_name,
                scheme="no-augmentation",
                outcome_error=app.outcome_error(field, base_only),
                mean_io_time=0.0,
            )
        )
        for policy in POLICIES:
            i = cells.index((app_name, policy))
            chunk = summaries[i * replications : (i + 1) * replications]
            rows.append(
                Fig10Row(
                    app=app_name,
                    scheme=policy,
                    outcome_error=float(np.mean([s.mean_outcome_error for s in chunk])),
                    mean_io_time=float(np.mean([s.mean_io_time for s in chunk])),
                )
            )
    return Fig10Result(rows=tuple(rows))
