"""Fig. 14 — impact of priority and error bound on cross-layer performance.

(a) priority ∈ {1, 5, 10} at a fixed ε = 0.01 — higher priority earns a
larger weight and thus lower I/O time (sub-linearly: doubling the weight
does not double the bandwidth share);
(b) error bound ∈ {1e-1 … 1e-4} at fixed p = 10 — tighter bounds mandate
more augmentation and thus higher I/O time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table

__all__ = ["Fig14Result", "run_fig14", "PRIORITIES", "ERROR_BOUNDS"]

PRIORITIES = (1.0, 5.0, 10.0)
ERROR_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4)
LADDER = (1e-1, 1e-2, 1e-3, 1e-4)


@dataclass(frozen=True)
class Fig14Row:
    sweep: str  # "priority" or "bound"
    value: float
    mean_io_time: float
    std_io_time: float


@dataclass(frozen=True)
class Fig14Result:
    rows: tuple[Fig14Row, ...]

    def series(self, sweep: str) -> tuple[list[float], list[float]]:
        rows = [r for r in self.rows if r.sweep == sweep]
        return [r.value for r in rows], [r.mean_io_time for r in rows]

    def format_rows(self) -> str:
        return format_table(
            ["Sweep", "Value", "Mean I/O (s)", "Std (s)"],
            [
                (r.sweep, f"{r.value:g}", f"{r.mean_io_time:.2f}", f"{r.std_io_time:.2f}")
                for r in self.rows
            ],
            title="Fig 14: impact of priority (at eps=0.01) and error bound (at p=10)",
        )


def run_fig14(
    *,
    app: str = "xgc",
    replications: int = 3,
    max_steps: int = 60,
    seed: int = 0,
    workers: int | str | None = 1,
) -> Fig14Result:
    """Both sweeps of Fig. 14 under the cross-layer policy."""
    cells = [("priority", p, 0.01, p) for p in PRIORITIES]
    cells += [("bound", bound, bound, 10.0) for bound in ERROR_BOUNDS]
    # cells: (sweep label, swept value, prescribed bound, priority).
    configs = [
        ScenarioConfig(
            app=app,
            policy="cross-layer",
            # Deep decimation so every bound in the sweep demands a
            # different amount of augmentation I/O.
            decimation_ratio=256,
            error_bounds=LADDER,
            prescribed_bound=bound,
            priority=priority,
            max_steps=max_steps,
            seed=seed + rep,
        )
        for _, _, bound, priority in cells
        for rep in range(replications)
    ]
    summaries = SweepExecutor(workers).run_scenarios(configs)
    rows: list[Fig14Row] = []
    for i, (sweep, value, _, _) in enumerate(cells):
        chunk = summaries[i * replications : (i + 1) * replications]
        rows.append(
            Fig14Row(
                sweep=sweep,
                value=value,
                mean_io_time=float(np.mean([s.mean_io_time for s in chunk])),
                std_io_time=float(np.mean([s.std_io_time for s in chunk])),
            )
        )
    return Fig14Result(rows=tuple(rows))
