"""Replication statistics: seed sweeps with confidence intervals.

The simulator is deterministic per seed; statistical claims come from
replicating a scenario over independent seeds.  ``replicate`` runs the
sweep (optionally fanned out over a :class:`SweepExecutor` process pool)
and summarises any per-run metric with mean, std, standard error, and a
t-based 95 % confidence interval — the numbers behind every "A beats B"
statement in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from repro.engine.sweep import ScenarioSummary, SweepExecutor
from repro.experiments.config import ScenarioConfig

__all__ = ["ReplicationStats", "replicate", "compare"]


@dataclass(frozen=True)
class ReplicationStats:
    """Summary of one metric over seeded replications."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    @property
    def sem(self) -> float:
        return self.std / np.sqrt(self.n) if self.n > 1 else 0.0

    def ci95(self) -> tuple[float, float]:
        """Two-sided t-based 95 % confidence interval for the mean."""
        if self.n < 2 or self.std == 0.0:
            return (self.mean, self.mean)
        half = float(_scipy_stats.t.ppf(0.975, self.n - 1)) * self.sem
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.ci95()
        return f"{self.mean:.2f} [{lo:.2f}, {hi:.2f}] (n={self.n})"


def replicate(
    config: ScenarioConfig,
    seeds: Sequence[int],
    metric: Callable[[ScenarioSummary], float] = lambda r: r.mean_io_time,
    *,
    executor: SweepExecutor | None = None,
    outcome_error: bool = False,
) -> ReplicationStats:
    """Run ``config`` once per seed and summarise ``metric``.

    ``metric`` receives the run's :class:`ScenarioSummary` (a full result
    cannot cross the process boundary); it is applied parent-side, so it
    may be any callable.  ``executor`` fans the seeds out over a process
    pool (serial by default, identical values either way); set
    ``outcome_error=True`` when the metric reads ``mean_outcome_error``.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    ex = executor if executor is not None else SweepExecutor()
    summaries = ex.run_scenarios(
        [config.with_(seed=s) for s in seeds], outcome_error=outcome_error
    )
    return ReplicationStats(values=tuple(float(metric(s)) for s in summaries))


def compare(
    config_a: ScenarioConfig,
    config_b: ScenarioConfig,
    seeds: Sequence[int],
    metric: Callable[[ScenarioSummary], float] = lambda r: r.mean_io_time,
    *,
    executor: SweepExecutor | None = None,
    outcome_error: bool = False,
) -> dict[str, float]:
    """Paired seed-by-seed comparison of two configurations.

    The same seed gives both configurations the same interference
    alignment, so the paired differences isolate the configuration effect.
    Returns the paired mean difference (a − b), the win rate of ``a``
    (fraction of seeds where a's metric is lower), and the paired t-test
    p-value.
    """
    a = replicate(config_a, seeds, metric, executor=executor, outcome_error=outcome_error)
    b = replicate(config_b, seeds, metric, executor=executor, outcome_error=outcome_error)
    diffs = np.asarray(a.values) - np.asarray(b.values)
    if len(seeds) > 1 and diffs.std(ddof=1) > 0:
        _, p_value = _scipy_stats.ttest_rel(a.values, b.values)
    else:
        p_value = float("nan")
    return {
        "mean_diff": float(diffs.mean()),
        "win_rate_a": float(np.mean(diffs < 0)),
        "p_value": float(p_value),
    }
