"""Fig. 7 — DFT-based interference estimation accuracy.

Runs the six-noise scenario without adaptivity (so every step measures
the shared tier), trains the DFT estimator on the first half of the
trace (the paper's 0–1800 s), predicts the second half (1800–3600 s),
and reports the prediction error for ``thresh`` of 25 %, 50 % and 75 %.
The paper's shape: estimation is accurate overall and degrades as
``thresh`` grows (more components discarded).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import DFTEstimator
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.experiments.report import format_table

__all__ = ["Fig7Result", "run_fig07", "DEFAULT_THRESHOLDS"]

DEFAULT_THRESHOLDS = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class Fig7Row:
    thresh: float
    kept_components: int
    mae_mb: float
    rmse_mb: float
    corr: float


@dataclass(frozen=True)
class Fig7Result:
    rows: tuple[Fig7Row, ...]
    measured_mb: np.ndarray
    predictions_mb: dict[float, np.ndarray]
    train_steps: int

    def format_rows(self) -> str:
        return format_table(
            ["thresh", "kept comps", "MAE (MB/s)", "RMSE (MB/s)", "corr"],
            [
                (f"{r.thresh:.0%}", r.kept_components, f"{r.mae_mb:.1f}",
                 f"{r.rmse_mb:.1f}", f"{r.corr:.2f}")
                for r in self.rows
            ],
            title="Fig 7: DFT-based interference estimation (train on first half, "
            "predict second half)",
        )


def run_fig07(
    *,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    max_steps: int = 60,
    seed: int = 0,
    app: str = "xgc",
) -> Fig7Result:
    """Measure, fit per threshold, and score the second-half forecast."""
    cfg = ScenarioConfig(
        app=app, policy="no-adaptivity", max_steps=max_steps, error_control=False, seed=seed
    )
    result = run_scenario(cfg)
    measured = result.measured_bandwidths / 1e6
    n = len(measured)
    train = n // 2
    truth = measured[train:]

    rows = []
    preds: dict[float, np.ndarray] = {}
    for thresh in thresholds:
        est = DFTEstimator(thresh).fit(measured[:train] * 1e6)
        pred = np.asarray(est.predict(np.arange(train, n))) / 1e6
        preds[thresh] = pred
        err = pred - truth
        corr = float(np.corrcoef(pred, truth)[0, 1]) if truth.std() > 0 else 0.0
        rows.append(
            Fig7Row(
                thresh=thresh,
                kept_components=est.num_kept_components,
                mae_mb=float(np.abs(err).mean()),
                rmse_mb=float(np.sqrt((err**2).mean())),
                corr=corr,
            )
        )
    return Fig7Result(
        rows=tuple(rows), measured_mb=measured, predictions_mb=preds, train_steps=train
    )
