"""Centralized vs decentralized cluster arbitration, head to head.

The experiment the cluster kernel exists for: the same noisy-neighbor
cluster (hot nodes offering ``hot_demand`` × their fair share next to
mostly-idle cold nodes) is run once per arbitration policy and scored on
the three axes the paper's single-node controller never had to trade
off —

* **fairness** — Jain index over per-node service ratios (served bytes
  over demanded bytes, so heterogeneous offered load is not itself
  counted as unfairness);
* **tail latency** — cluster-wide p99 request latency from the merged
  per-shard histograms, plus the SLO violation rate;
* **coordination cost** — bus messages per round, the overhead a
  centralized controller pays always (2·N report/alloc messages each
  round) and AdapTBF pays only where demand is (borrow/grant/return
  between ring neighbours).

Exported end-to-end via ``repro cluster`` / ``repro figure cluster`` /
``repro export cluster``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import ClusterConfig, ClusterResult, run_cluster
from repro.experiments.report import format_table

__all__ = [
    "ClusterCompareRow",
    "ClusterCompareResult",
    "run_cluster_compare",
    "format_rows",
]

#: Policies every comparison covers, in report order.
COMPARED_POLICIES = ("centralized", "adaptbf")


@dataclass(frozen=True)
class ClusterCompareRow:
    """One arbitration policy's scorecard over the shared scenario."""

    policy: str
    jain_fairness: float
    p99_latency_s: float
    slo_violation_rate: float
    completions: int
    messages_total: int
    messages_by_kind: dict
    #: Bus traffic normalised to the scenario size (msgs / round / node).
    msgs_per_round_per_node: float
    #: Worst relative rate-conservation error over all round boundaries.
    conservation_error: float
    events_executed: int


@dataclass
class ClusterCompareResult:
    """Scorecards plus the shared scenario shape, JSON-exportable."""

    n_nodes: int
    shards: int
    rounds: int
    tenants_per_node: int
    workers: int
    seed: int
    rows: list[ClusterCompareRow] = field(default_factory=list)

    def row(self, policy: str) -> ClusterCompareRow:
        for r in self.rows:
            if r.policy == policy:
                return r
        raise KeyError(f"no row for policy {policy!r}")

    def format_rows(self) -> str:
        return format_rows(self)


def _score(result: ClusterResult) -> ClusterCompareRow:
    cfg = result.config
    return ClusterCompareRow(
        policy=cfg.arbitration,
        jain_fairness=result.jain_fairness,
        p99_latency_s=result.p99_latency_s,
        slo_violation_rate=result.slo_violation_rate,
        completions=sum(r.completions for r in result.reports),
        messages_total=result.messages_total,
        messages_by_kind=dict(sorted(result.messages_by_kind.items())),
        msgs_per_round_per_node=result.messages_total / (cfg.rounds * cfg.n_nodes),
        conservation_error=result.conservation_error or 0.0,
        events_executed=result.events_executed,
    )


def run_cluster_compare(
    *,
    n_nodes: int = 32,
    shards: int = 4,
    tenants_per_node: int = 4,
    rounds: int = 40,
    seed: int = 0,
    workers: int | str | None = None,
    policies: tuple = COMPARED_POLICIES,
) -> ClusterCompareResult:
    """Run the same seeded cluster once per arbitration policy."""
    base = ClusterConfig(
        n_nodes=n_nodes,
        shards=shards,
        tenants_per_node=tenants_per_node,
        rounds=rounds,
        seed=seed,
        workers=workers,
    )
    out = ClusterCompareResult(
        n_nodes=n_nodes,
        shards=shards,
        rounds=rounds,
        tenants_per_node=tenants_per_node,
        workers=0,
        seed=seed,
    )
    for policy in policies:
        result = run_cluster(base.with_(arbitration=policy))
        out.workers = result.workers
        out.rows.append(_score(result))
    return out


def format_rows(result: ClusterCompareResult) -> str:
    """Paper-style text table of the policy scorecards."""
    table = format_table(
        ["policy", "Jain", "p99 (s)", "SLO viol", "reqs", "msgs", "msgs/rd/node"],
        [
            (
                r.policy,
                f"{r.jain_fairness:.4f}",
                f"{r.p99_latency_s:.2f}",
                f"{r.slo_violation_rate * 100:.1f}%",
                r.completions,
                r.messages_total,
                f"{r.msgs_per_round_per_node:.2f}",
            )
            for r in result.rows
        ],
        title=(
            f"Cluster arbitration: {result.n_nodes} nodes x "
            f"{result.tenants_per_node} tenants, {result.shards} shards, "
            f"{result.rounds} rounds (workers={result.workers})"
        ),
    )
    lines = [table, "", "bus traffic by kind:"]
    for r in result.rows:
        kinds = ", ".join(f"{k}={v}" for k, v in r.messages_by_kind.items()) or "-"
        lines.append(f"  {r.policy:12s} {kinds}")
    return "\n".join(lines)
