"""Headless microbenchmark harness — the perf-regression trajectory.

``pytest-benchmark`` runs (``benchmarks/test_microbench.py``) are great
interactively but leave no machine-readable trail.  This module times the
same core operations with plain ``time.perf_counter`` loops and emits a
single JSON report (``BENCH_micro.json`` at the repo root) carrying
median wall-times plus machine/commit metadata, so successive commits can
be compared without a pytest session.  Drive it via
``benchmarks/run_bench.py`` or ``repro bench``; CI regenerates the report
as a non-blocking artifact.

Two ladder timings matter for the incremental-construction work:

* ``build_ladder_reference_nocache`` — ``method="reference"`` with the
  decomposition's scratch cache deleted before every iteration.  Every
  probe re-runs a full reconstruction + metric pass, which is exactly the
  pre-fastladder cost model; this is the regression baseline.
* ``build_ladder_hybrid`` — the default method in its steady state
  (scratch retained across calls, the pattern sweeps and the memo
  produce).  ``derived.ladder_speedup_default_vs_reference`` is the ratio
  of the two medians and is expected to stay ≥ 5.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Callable

__all__ = ["BENCH_FILENAME", "SCHEMA_VERSION", "run_microbench", "write_report", "repo_root"]

BENCH_FILENAME = "BENCH_micro.json"
SCHEMA_VERSION = 1

#: Median speedup of the default ladder method over the pre-fastladder
#: cost model that the perf work is pinned to (see module docstring).
SPEEDUP_TARGET = 5.0


def repo_root() -> Path:
    """The repository root (three levels above this module)."""
    return Path(__file__).resolve().parents[3]


def _git_commit(root: Path) -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def _time(
    fn: Callable[[], object],
    *,
    repeats: int,
    warmup: int = 1,
    setup: Callable[[], None] | None = None,
) -> list[float]:
    """Wall-time ``fn`` ``repeats`` times (after ``warmup`` discarded runs).

    ``setup`` runs before every iteration, warmup included, outside the
    timed region.
    """
    times: list[float] = []
    for i in range(warmup + repeats):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if i >= warmup:
            times.append(dt)
    return times


def _clear_scratch(dec) -> None:
    """Drop the per-decomposition ladder scratch cache (emulates a cold build)."""
    if hasattr(dec, "_ladder_scratch"):
        del dec._ladder_scratch


def run_microbench(
    *,
    repeats: int = 5,
    grid: tuple[int, int] = (512, 512),
    levels: int = 5,
    progress: Callable[[str, dict], None] | None = None,
) -> dict:
    """Run the suite and return the report dict (see module docstring)."""
    import numpy as np

    from repro.apps import make_app
    from repro.core.error_control import ErrorMetric, build_ladder
    from repro.core.refactor import decompose, recompose_full
    from repro.core.serialize import pack_ladder, unpack_ladder

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    bounds = [0.1, 0.01, 0.001]
    metric = ErrorMetric.NRMSE
    field = make_app("xgc").generate(grid, seed=0)
    dec = decompose(field, levels)
    ladder = build_ladder(dec, bounds, metric)
    payload = pack_ladder(ladder)

    specs: list[tuple[str, Callable[[], object], Callable[[], None] | None]] = [
        ("decompose", lambda: decompose(field, levels), None),
        ("recompose_full", lambda: recompose_full(dec), None),
        (
            "build_ladder_reference_nocache",
            lambda: build_ladder(dec, bounds, metric, method="reference"),
            lambda: _clear_scratch(dec),
        ),
        (
            "build_ladder_hybrid_coldcache",
            lambda: build_ladder(dec, bounds, metric),
            lambda: _clear_scratch(dec),
        ),
        ("build_ladder_hybrid", lambda: build_ladder(dec, bounds, metric), None),
        (
            "build_ladder_measured",
            lambda: build_ladder(dec, bounds, metric, method="measured"),
            None,
        ),
        (
            "build_ladder_analytic",
            lambda: build_ladder(dec, bounds, metric, method="analytic"),
            None,
        ),
        ("reconstruct_rung", lambda: ladder.reconstruct(ladder.num_buckets - 1), None),
        ("pack_unpack", lambda: unpack_ladder(payload), None),
    ]

    results: dict[str, dict] = {}
    for name, fn, setup in specs:
        times = _time(fn, repeats=repeats, setup=setup)
        row = {
            "median_s": statistics.median(times),
            "min_s": min(times),
            "max_s": max(times),
            "repeats": repeats,
        }
        results[name] = row
        if progress is not None:
            progress(name, row)

    reference = results["build_ladder_reference_nocache"]["median_s"]
    default = results["build_ladder_hybrid"]["median_s"]
    cold = results["build_ladder_hybrid_coldcache"]["median_s"]
    derived = {
        "ladder_speedup_default_vs_reference": reference / default if default > 0 else None,
        "ladder_speedup_coldcache_vs_reference": reference / cold if cold > 0 else None,
        "speedup_target": SPEEDUP_TARGET,
        "meets_speedup_target": default > 0 and reference / default >= SPEEDUP_TARGET,
    }

    root = repo_root()
    return {
        "schema": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "commit": _git_commit(root),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "grid": list(grid),
            "levels": levels,
            "bounds": bounds,
            "metric": metric.value,
            "repeats": repeats,
        },
        "benchmarks": results,
        "derived": derived,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report as pretty JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
