"""Headless microbenchmark harness — the perf-regression trajectory.

``pytest-benchmark`` runs (``benchmarks/test_microbench.py``) are great
interactively but leave no machine-readable trail.  This module times the
same core operations with plain ``time.perf_counter`` loops and emits a
single JSON report (``BENCH_micro.json`` at the repo root) carrying
median wall-times plus machine/commit metadata, so successive commits can
be compared without a pytest session.  Drive it via
``benchmarks/run_bench.py`` or ``repro bench``; CI regenerates the report
as a non-blocking artifact.

Two ladder timings matter for the incremental-construction work:

* ``build_ladder_reference_nocache`` — ``method="reference"`` with the
  decomposition's scratch cache deleted before every iteration.  Every
  probe re-runs a full reconstruction + metric pass, which is exactly the
  pre-fastladder cost model; this is the regression baseline.
* ``build_ladder_hybrid`` — the default method in its steady state
  (scratch retained across calls, the pattern sweeps and the memo
  produce).  ``derived.ladder_speedup_default_vs_reference`` is the ratio
  of the two medians and is expected to stay ≥ 5.

Scenario-level benchmarks (schema ≥ 2) time the discrete-event substrate
itself rather than the ladder math:

* ``scenario_fig07_contention`` — a fig07-style contention run (Table IV
  noise against the analytics on the shared HDD, no adaptivity), timed
  end to end; rows carry ``events_per_sec`` and ``sim_time_s`` alongside
  the wall medians.
* ``blkio_stress16_fast`` / ``blkio_stress16_reference`` — a 16-stream
  mixed read/write stress case with periodic 8-weight control bursts, run
  once on the device fast path (SoA demands + signature memo + coalesced
  flushes) and once with ``fast_path=False`` (per-change reschedules,
  validated ``StreamDemand`` rebuilds, dict-based reference solver — the
  pre-optimisation cost model).
  ``derived.blkio_stress16_speedup_fast_vs_reference`` is the wall-clock
  ratio over the identical simulated horizon and is expected to stay ≥ 2.

Schema 3 records the event-kernel comparison: the fig07 and stress16
scenarios run once per kernel (``scenario_fig07_contention`` /
``blkio_stress16_fast`` on the default calendar kernel, ``*_heap``
variants on the binary-heap parity oracle) and every scenario row
carries ``events_per_sec``.  ``derived.event_kernel_ratio_*`` is
calendar events/sec over heap events/sec — both kernels execute the
identical event sequence, so the ratio is pure kernel overhead.  The
regression gate lives in ``benchmarks/compare_bench.py``: any scenario
row whose events/sec drops more than 20 % against the committed
baseline fails CI.

Schema 4 scales the device axis to where the vectorised epoch path
(persistent SoA stream arrays + batched dispatch, architecture §1.2)
actually pays:

* ``blkio_stress16_scalar`` — the stress16 case under
  ``dispatch="scalar"`` (one Python callback per ready entry, the
  parity oracle).  ``derived.dispatch_speedup_stress16`` is the
  scalar/batched wall ratio; at 16 streams the two are near parity
  because the event-loop floor dominates, so the ratio documents the
  dispatch axis rather than gating it.
* ``blkio_stress64`` — the same stress workload at 64 streams, where
  the array sync/solve overtakes per-object attribute loops.
* ``blkio_soak256`` — a 256-stream homogeneous soak (uniform weights,
  no control churn): every epoch groups hundreds of same-instant
  starts into single batch calls and the solve memo hits on the
  steady-state signature.  Both new rows are hard-gated on events/sec
  by ``compare_bench.py`` like every scenario row.

Schema 5 adds the cluster-scale axis (``repro.cluster``, architecture
§12): ``cluster_soak_shards{1,4,8}`` run the same 16-node noisy-neighbor
soak partitioned over 1, 4, and 8 shard simulations, each shard on its
own worker process (one process at 1 shard — the serial fallback).  Rows
carry **aggregate** events/sec summed over shards; the wall clock starts
after the worker pool is up (one warm pool per shard count, reused
across repeats via ``run_cluster(pool=...)``), so the figure measures
simulation + round-boundary IPC, not process spawn.
``derived.cluster_scaling_8x`` is the 8-shard/1-shard aggregate
events/sec ratio — ≈ core-count scaling on an unloaded multi-core
runner, honestly ≈ 1 on a single-core box.  The rows join the generic
events/sec hard gate; the scaling ratio itself is recorded, not gated,
because it is a property of the runner's core count.

Schema 6 adds the controller-family stability probes (architecture
§13): ``stability_step_{tango,pid,mpc}`` each time a short cross-layer
scenario under the ``stability-step`` fault campaign with that
controller selected through the ``CONTROLLERS`` registry.  Rows carry
events/sec (joining the generic hard gate) plus the suite's
control-quality scores — ``settling_time_s`` and ``overshoot`` of the
prediction trace — recorded for the review trend, not gated: they are
deterministic per seed and only move when someone retunes a controller.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Callable

__all__ = ["BENCH_FILENAME", "SCHEMA_VERSION", "run_microbench", "write_report", "repo_root"]

BENCH_FILENAME = "BENCH_micro.json"
SCHEMA_VERSION = 6

#: Median speedup of the default ladder method over the pre-fastladder
#: cost model that the perf work is pinned to (see module docstring).
SPEEDUP_TARGET = 5.0

#: Median wall-clock speedup of the device fast path over the
#: pre-optimisation solver on the 16-stream stress case.
BLKIO_SPEEDUP_TARGET = 2.0


def repo_root() -> Path:
    """The repository root (three levels above this module)."""
    return Path(__file__).resolve().parents[3]


def _git_commit(root: Path) -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else None


def _time(
    fn: Callable[[], object],
    *,
    repeats: int,
    warmup: int = 1,
    setup: Callable[[], None] | None = None,
) -> list[float]:
    """Wall-time ``fn`` ``repeats`` times (after ``warmup`` discarded runs).

    ``setup`` runs before every iteration, warmup included, outside the
    timed region.
    """
    times: list[float] = []
    for i in range(warmup + repeats):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if i >= warmup:
            times.append(dt)
    return times


def _clear_scratch(dec) -> None:
    """Drop the per-decomposition ladder scratch cache (emulates a cold build)."""
    if hasattr(dec, "_ladder_scratch"):
        del dec._ladder_scratch


def _run_stress_blkio(
    fast_path: bool,
    *,
    kernel: str = "calendar",
    dispatch: str = "batched",
    n_streams: int = 16,
    horizon: float = 120.0,
) -> tuple[float, int, float]:
    """One n-stream device stress run; returns (wall_s, events, sim_time).

    Perpetual mixed read/write workers resubmit multi-MiB requests
    against one shared HDD while a churn process rewrites eight blkio
    weights every 250 ms — the reschedule-heavy regime the device fast
    path (SoA demands, signature memo, coalesced flushes) targets.  With
    ``fast_path=False`` the device falls back to per-change reschedules
    and the dict-based reference solver, i.e. the pre-optimisation cost
    model, over the identical simulated horizon.  ``dispatch="scalar"``
    runs the same workload with epoch-grouped dispatch disabled.
    """
    from repro.simkernel import Simulation, Timeout
    from repro.storage.cgroup import CgroupController
    from repro.storage.device import DEVICE_PRESETS, BlockDevice
    from repro.util.units import MiB

    sim = Simulation(kernel=kernel, dispatch=dispatch)
    device = BlockDevice(sim, DEVICE_PRESETS["seagate-hdd-2t"], fast_path=fast_path)
    groups = CgroupController()
    cgroups = [
        groups.create(f"stress-{i}", weight=100 + (i % 9) * 100) for i in range(n_streams)
    ]

    def worker(idx: int, cgroup):
        direction = "read" if idx % 3 else "write"
        nbytes = (4 + (idx % 4) * 2) * MiB
        while True:
            yield device.submit(cgroup, nbytes, direction)

    for idx, cgroup in enumerate(cgroups):
        sim.process(worker(idx, cgroup))

    def churn():
        burst = 0
        while True:
            yield Timeout(0.25)
            for j in range(8):
                cgroups[(burst + j) % n_streams].set_blkio_weight(
                    100 + ((burst + j) * 37) % 900, now=sim.now
                )
            burst += 8

    sim.process(churn())
    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, sim.events_executed, sim.now


def _run_soak_blkio(
    n_streams: int = 256,
    horizon: float = 10.0,
) -> tuple[float, int, float]:
    """A homogeneous many-stream soak; returns (wall_s, events, sim_time).

    256 identical workers (uniform weight, 1 MiB requests, 2:1 read/write
    mix, no control churn) hammer one shared SSD (zero concurrency
    thrash, so the wave period stays sub-second even at 256 streams).
    All streams submit at t=0 and resubmit on completion, so every epoch
    carries large groups of same-instant starts and completions — the
    regime where batched dispatch collapses hundreds of Python callbacks
    into single ``_start_streams_batch`` calls, completions bulk-succeed
    in one array pass, and the solver memo hits on the recurring demand
    signature (each wave drains the device completely, so rows refill in
    identical order).
    """
    from repro.simkernel import Simulation
    from repro.storage.cgroup import CgroupController
    from repro.storage.device import DEVICE_PRESETS, BlockDevice
    from repro.util.units import MiB

    sim = Simulation()
    device = BlockDevice(sim, DEVICE_PRESETS["intel-ssd-400"], fast_path=True)
    groups = CgroupController()

    def worker(cgroup, direction):
        while True:
            yield device.submit(cgroup, MiB, direction)

    for i in range(n_streams):
        cgroup = groups.create(f"soak-{i}", weight=500)
        sim.process(worker(cgroup, "read" if i % 3 else "write"))

    t0 = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - t0, sim.events_executed, sim.now


def _cluster_soak_config(shards: int):
    """The shared cluster-soak shape at a given shard count.

    16 nodes × 8 tenants with 256 KiB mean requests keep each round's
    event work large relative to the per-round pipe exchange, so the
    shard axis measures parallel simulation, not IPC.  Round stats are
    off (soak mode) and ``workers=shards`` pins one worker per shard.
    """
    from repro.cluster import ClusterConfig
    from repro.util.units import KiB

    return ClusterConfig(
        n_nodes=16,
        shards=shards,
        tenants_per_node=8,
        rounds=15,
        request_bytes=256 * KiB,
        collect_round_stats=False,
        workers=shards,
    )


def _run_cluster_soak(shards: int, repeats: int) -> list[tuple[float, int, float]]:
    """Warmup + ``repeats`` timed runs on one warm shard pool.

    Returns ``(wall_s, events, sim_time)`` per timed run; ``wall_s`` is
    the kernel's own round-loop clock (pool spawn excluded), and events
    are the aggregate over all shards.
    """
    from repro.cluster import make_shard_pool, run_cluster
    from repro.engine.sweep import resolve_workers

    config = _cluster_soak_config(shards)
    workers = min(resolve_workers(config.workers), config.shards)
    pool = make_shard_pool(config, workers)
    try:
        rows = []
        for i in range(1 + repeats):  # first run is a discarded warmup
            result = run_cluster(config, pool=pool)
            if i >= 1:
                rows.append((result.wall_s, result.events_executed, result.sim_time))
        return rows
    finally:
        pool.close()


def _run_scenario_contention(kernel: str = "calendar") -> tuple[float, int, float]:
    """One fig07-style contention run; returns (wall_s, events, sim_time).

    Table IV noise against a non-adaptive analytics tenant on the shared
    capacity tier — the paper's interference baseline.  Only the run loop
    is timed; ladder construction and staging happen outside the clock
    (and are memoized across repeats anyway).
    """
    from repro.engine.session import ScenarioSession
    from repro.experiments.config import ScenarioConfig

    config = ScenarioConfig(policy="no-adaptivity", max_steps=12, seed=0, kernel=kernel)
    session = ScenarioSession(config)
    _, _, ladder = session.build_ladder()
    dataset = session.stage(f"{config.app}-data", ladder)
    session.launch_noise()
    controller = session.build_controller(ladder)
    session.add_analytics("analytics", dataset, controller)
    t0 = time.perf_counter()
    session.run()
    return time.perf_counter() - t0, session.sim.events_executed, session.sim.now


def _run_scenario_stability(controller: str) -> tuple[float, int, float, float, float]:
    """One stability-step probe run with the named controller.

    Returns ``(wall_s, events, sim_time, settling_time_s, overshoot)``.
    Same composition discipline as the contention row — ladder build and
    staging stay outside the clock; only the run loop is timed.  The
    control-quality scores come from the stability suite's trace scorer
    on the completed run.
    """
    import numpy as np

    from repro.engine.session import ScenarioSession
    from repro.experiments.config import ScenarioConfig
    from repro.experiments.stability import _ONSET_FRACTIONS, _score_trace

    config = ScenarioConfig(
        policy="cross-layer",
        max_steps=12,
        seed=0,
        faults="stability-step",
        controller=controller,
    )
    session = ScenarioSession(config)
    _, _, ladder = session.build_ladder()
    dataset = session.stage(f"{config.app}-data", ladder)
    session.launch_noise()
    session.apply_faults(config.faults)
    ctl = session.build_controller(ladder)
    driver = session.add_analytics("analytics", dataset, ctl)
    t0 = time.perf_counter()
    session.run()
    wall = time.perf_counter() - t0
    predicted = np.asarray([r.predicted_bw for r in driver.records])
    measured = np.asarray([r.measured_bw for r in driver.records])
    settling, overshoot, _ = _score_trace(
        predicted,
        measured,
        onset_fraction=_ONSET_FRACTIONS["step"],
        period=config.period,
    )
    return wall, session.sim.events_executed, session.sim.now, settling, overshoot


def run_microbench(
    *,
    repeats: int = 5,
    grid: tuple[int, int] = (512, 512),
    levels: int = 5,
    progress: Callable[[str, dict], None] | None = None,
) -> dict:
    """Run the suite and return the report dict (see module docstring)."""
    import numpy as np

    from repro.apps import make_app
    from repro.core.error_control import ErrorMetric, build_ladder
    from repro.core.refactor import decompose, recompose_full
    from repro.core.serialize import pack_ladder, unpack_ladder

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    bounds = [0.1, 0.01, 0.001]
    metric = ErrorMetric.NRMSE
    field = make_app("xgc").generate(grid, seed=0)
    dec = decompose(field, levels)
    ladder = build_ladder(dec, bounds, metric)
    payload = pack_ladder(ladder)

    specs: list[tuple[str, Callable[[], object], Callable[[], None] | None]] = [
        ("decompose", lambda: decompose(field, levels), None),
        ("recompose_full", lambda: recompose_full(dec), None),
        (
            "build_ladder_reference_nocache",
            lambda: build_ladder(dec, bounds, metric, method="reference"),
            lambda: _clear_scratch(dec),
        ),
        (
            "build_ladder_hybrid_coldcache",
            lambda: build_ladder(dec, bounds, metric),
            lambda: _clear_scratch(dec),
        ),
        ("build_ladder_hybrid", lambda: build_ladder(dec, bounds, metric), None),
        (
            "build_ladder_measured",
            lambda: build_ladder(dec, bounds, metric, method="measured"),
            None,
        ),
        (
            "build_ladder_analytic",
            lambda: build_ladder(dec, bounds, metric, method="analytic"),
            None,
        ),
        ("reconstruct_rung", lambda: ladder.reconstruct(ladder.num_buckets - 1), None),
        ("pack_unpack", lambda: unpack_ladder(payload), None),
    ]

    results: dict[str, dict] = {}
    for name, fn, setup in specs:
        times = _time(fn, repeats=repeats, setup=setup)
        row = {
            "median_s": statistics.median(times),
            "min_s": min(times),
            "max_s": max(times),
            "repeats": repeats,
        }
        results[name] = row
        if progress is not None:
            progress(name, row)

    # Scenario-level benchmarks: each repeat rebuilds the simulation from
    # scratch (the run mutates it), so the runner is timed internally and
    # reports events alongside the wall time.  Event counts are
    # deterministic per runner, so the last repeat's figures stand for all.
    scenario_specs: list[tuple[str, Callable[[], tuple[float, int, float]]]] = [
        ("scenario_fig07_contention", _run_scenario_contention),
        ("scenario_fig07_contention_heap", lambda: _run_scenario_contention("heap")),
        ("blkio_stress16_fast", lambda: _run_stress_blkio(True)),
        ("blkio_stress16_fast_heap", lambda: _run_stress_blkio(True, kernel="heap")),
        ("blkio_stress16_scalar", lambda: _run_stress_blkio(True, dispatch="scalar")),
        ("blkio_stress16_reference", lambda: _run_stress_blkio(False)),
        ("blkio_stress64", lambda: _run_stress_blkio(True, n_streams=64, horizon=40.0)),
        ("blkio_soak256", _run_soak_blkio),
    ]
    for name, runner in scenario_specs:
        walls: list[float] = []
        events = 0
        sim_time = 0.0
        for i in range(1 + repeats):  # first run is a discarded warmup
            wall, events, sim_time = runner()
            if i >= 1:
                walls.append(wall)
        median = statistics.median(walls)
        row = {
            "median_s": median,
            "min_s": min(walls),
            "max_s": max(walls),
            "repeats": repeats,
            "events_executed": events,
            "sim_time_s": sim_time,
            "events_per_sec": events / median if median > 0 else None,
        }
        results[name] = row
        if progress is not None:
            progress(name, row)

    # Cluster-soak rows (schema 5): one warm shard pool per shard count,
    # reused across repeats, wall clock from the kernel's own round-loop
    # timer — spawn cost never pollutes the median.
    for shards in (1, 4, 8):
        name = f"cluster_soak_shards{shards}"
        rows = _run_cluster_soak(shards, repeats)
        walls = [w for w, _, _ in rows]
        events = rows[-1][1]
        sim_time = rows[-1][2]
        median = statistics.median(walls)
        row = {
            "median_s": median,
            "min_s": min(walls),
            "max_s": max(walls),
            "repeats": repeats,
            "events_executed": events,
            "sim_time_s": sim_time,
            "events_per_sec": events / median if median > 0 else None,
        }
        results[name] = row
        if progress is not None:
            progress(name, row)

    # Stability probes (schema 6): one row per built-in controller on the
    # step reference input.  Control-quality scores ride along (recorded,
    # not gated); ``None`` settling means the trace never entered the
    # settling band within the probe's 12 steps.
    for ctrl in ("tango", "pid", "mpc"):
        name = f"stability_step_{ctrl}"
        walls = []
        events, sim_time, settling, overshoot = 0, 0.0, float("nan"), 0.0
        for i in range(1 + repeats):  # first run is a discarded warmup
            wall, events, sim_time, settling, overshoot = _run_scenario_stability(ctrl)
            if i >= 1:
                walls.append(wall)
        median = statistics.median(walls)
        row = {
            "median_s": median,
            "min_s": min(walls),
            "max_s": max(walls),
            "repeats": repeats,
            "events_executed": events,
            "sim_time_s": sim_time,
            "events_per_sec": events / median if median > 0 else None,
            "settling_time_s": None if settling != settling else settling,
            "overshoot": overshoot,
        }
        results[name] = row
        if progress is not None:
            progress(name, row)

    reference = results["build_ladder_reference_nocache"]["median_s"]
    default = results["build_ladder_hybrid"]["median_s"]
    cold = results["build_ladder_hybrid_coldcache"]["median_s"]
    stress_fast = results["blkio_stress16_fast"]["median_s"]
    stress_ref = results["blkio_stress16_reference"]["median_s"]
    derived = {
        "ladder_speedup_default_vs_reference": reference / default if default > 0 else None,
        "ladder_speedup_coldcache_vs_reference": reference / cold if cold > 0 else None,
        "speedup_target": SPEEDUP_TARGET,
        "meets_speedup_target": default > 0 and reference / default >= SPEEDUP_TARGET,
        "blkio_stress16_speedup_fast_vs_reference": (
            stress_ref / stress_fast if stress_fast > 0 else None
        ),
        "blkio_speedup_target": BLKIO_SPEEDUP_TARGET,
        "meets_blkio_speedup_target": (
            stress_fast > 0 and stress_ref / stress_fast >= BLKIO_SPEEDUP_TARGET
        ),
    }
    # Event-kernel comparison (schema 3): calendar vs heap events/sec on
    # the identical event sequence — the ratio is pure kernel overhead.
    for key, cal_name, heap_name in (
        ("event_kernel_ratio_fig07", "scenario_fig07_contention", "scenario_fig07_contention_heap"),
        ("event_kernel_ratio_stress16", "blkio_stress16_fast", "blkio_stress16_fast_heap"),
    ):
        cal_eps = results[cal_name]["events_per_sec"]
        heap_eps = results[heap_name]["events_per_sec"]
        derived[key] = cal_eps / heap_eps if cal_eps and heap_eps else None
    # Dispatch-axis comparison (schema 4): batched vs scalar wall time on
    # the identical trace.  Near 1.0 at 16 streams (event-loop floor);
    # the stress64/soak256 rows carry the scaling story via events/sec.
    scalar_wall = results["blkio_stress16_scalar"]["median_s"]
    derived["dispatch_speedup_stress16"] = (
        scalar_wall / stress_fast if stress_fast > 0 else None
    )
    # Cluster scaling (schema 5): aggregate events/sec at 8 shards over
    # 1 shard.  Recorded, not gated — on an unloaded 8-core runner this
    # tracks core count (≥ 3x expected); on a single core it is ≈ 1.
    soak1 = results["cluster_soak_shards1"]["events_per_sec"]
    soak8 = results["cluster_soak_shards8"]["events_per_sec"]
    derived["cluster_scaling_8x"] = soak8 / soak1 if soak1 and soak8 else None

    root = repo_root()
    return {
        "schema": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "commit": _git_commit(root),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "grid": list(grid),
            "levels": levels,
            "bounds": bounds,
            "metric": metric.value,
            "repeats": repeats,
        },
        "benchmarks": results,
        "derived": derived,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the report as pretty JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
