"""Single-node scenario runner: one :class:`ScenarioSession` end to end.

``run_scenario`` composes the configured testbed through the engine —
memoized decomposition + ladder, staged dataset, Table IV noise
containers, the adaptivity controller — runs the analytics, and returns
a :class:`ScenarioResult` with everything the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import AnalyticsApp
from repro.control import BaseController
from repro.core.error_control import AccuracyLadder, ErrorMetric
from repro.engine.memo import ladder_for_app
from repro.engine.session import ScenarioSession
from repro.experiments.config import ScenarioConfig
from repro.obs import OBS
from repro.storage.staging import StagedDataset
from repro.storage.stats import DeviceSample, DeviceSampler
from repro.util.validation import pop_renamed, warn_deprecated
from repro.workloads.analytics import StepRecord

__all__ = [
    "ScenarioResult",
    "run_scenario",
    "build_ladder_for_app",
]


def __getattr__(name: str):
    # ``make_weight_function`` moved to repro.engine.session (blessed
    # surface: repro.api); the old import path warns for one release.
    if name == "make_weight_function":
        warn_deprecated(
            "repro.experiments.runner.make_weight_function is deprecated; "
            "import it from repro.api (or repro.engine.session)",
            stacklevel=2,
        )
        from repro.engine.session import make_weight_function

        return make_weight_function
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_ladder_for_app(
    app: AnalyticsApp,
    *,
    grid_shape: tuple[int, int],
    decimation_ratio: int,
    metric: ErrorMetric,
    error_bounds: tuple[float, ...] | None = None,
    seed: int,
    method: str = "hybrid",
    **legacy,
) -> tuple[np.ndarray, AccuracyLadder]:
    """Generate the app's field, decompose it, and build its ladder.

    Memoized via :func:`repro.engine.memo.ladder_for_app`: sweeps that
    revisit the same (app, shape, ratio, metric, error_bounds, seed,
    method) point skip the decomposition entirely.  ``error_bounds`` is
    the canonical spelling; the legacy ``bounds=`` keyword warns.
    """
    error_bounds = pop_renamed(
        error_bounds,
        legacy,
        old="bounds",
        new="error_bounds",
        context="build_ladder_for_app",
    )
    return ladder_for_app(
        app,
        grid_shape=grid_shape,
        decimation_ratio=decimation_ratio,
        metric=metric,
        error_bounds=error_bounds,
        seed=seed,
        method=method,
    )


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    config: ScenarioConfig
    records: list[StepRecord]
    ladder: AccuracyLadder
    dataset: StagedDataset
    app: AnalyticsApp
    original: np.ndarray
    weight_history: list[tuple[float, int]]
    final_time: float
    _outcome_cache: dict[int, float] = field(default_factory=dict)
    #: Capacity-tier device samples, recorded only when observability is
    #: enabled (``None`` otherwise — the disabled path schedules nothing).
    device_samples: list[DeviceSample] | None = None
    #: The tenant's controller (mode history / degradation inspection).
    controller: BaseController | None = None

    def _require_records(self, what: str) -> None:
        if not self.records:
            raise ValueError(
                f"scenario produced no step records; {what} is undefined "
                "(the analytics never completed a step — check max_steps "
                "and the run horizon)"
            )

    # -- I/O performance (Figs 8, 9, 12, 13, 14, 16) -----------------------

    @property
    def io_times(self) -> np.ndarray:
        return np.asarray([r.io_time for r in self.records])

    @property
    def mean_io_time(self) -> float:
        self._require_records("mean_io_time")
        return float(self.io_times.mean())

    @property
    def std_io_time(self) -> float:
        self._require_records("std_io_time")
        return float(self.io_times.std())

    def io_time_percentile(self, q: float) -> float:
        """Tail latency: the q-th percentile of per-step I/O times."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        self._require_records("io_time_percentile")
        return float(np.percentile(self.io_times, q))

    @property
    def measured_bandwidths(self) -> np.ndarray:
        return np.asarray([r.measured_bw for r in self.records])

    @property
    def predicted_bandwidths(self) -> np.ndarray:
        return np.asarray([r.predicted_bw for r in self.records])

    @property
    def step_times(self) -> np.ndarray:
        return np.asarray([r.started_at for r in self.records])

    # -- data quality (Figs 2, 10) -------------------------------------------

    def outcome_error_at_rung(self, rung: int) -> float:
        """Relative error of the analysis outcome at a ladder rung."""
        if rung not in self._outcome_cache:
            approx = self.ladder.reconstruct(rung)
            self._outcome_cache[rung] = self.app.outcome_error(self.original, approx)
        return self._outcome_cache[rung]

    @property
    def mean_outcome_error(self) -> float:
        """Mean per-step analysis-outcome error, weighting steps equally."""
        self._require_records("mean_outcome_error")
        errs = [self.outcome_error_at_rung(r.target_rung) for r in self.records]
        return float(np.mean(errs))

    @property
    def mean_target_rung(self) -> float:
        self._require_records("mean_target_rung")
        return float(np.mean([r.target_rung for r in self.records]))

    # -- augmentation retrieval latency (Fig 13) ------------------------------

    def mean_latency_to_rung(self, rung: int) -> float:
        """Average I/O time of the steps that reached at least ``rung``."""
        times = [r.io_time for r in self.records if r.target_rung >= rung]
        if not times:
            raise RuntimeError(f"no step reached rung {rung}")
        return float(np.mean(times))

    # -- resilience accounting (fault campaigns) -----------------------------

    @property
    def total_read_errors(self) -> int:
        return sum(r.read_errors for r in self.records)

    @property
    def total_skipped_objects(self) -> int:
        """Objects abandoned after retry exhaustion, across all steps."""
        return sum(r.skipped_objects for r in self.records)

    @property
    def degraded_steps(self) -> list[int]:
        """Steps whose accuracy no longer honours the ladder's bound.

        A step that skipped any object is *explicitly reported* here
        rather than silently counted as within-bound.
        """
        return [r.step for r in self.records if r.skipped_objects > 0]

    @property
    def mode_transitions(self) -> list[tuple[int, str, str]]:
        """Controller degradation-ladder transitions ``(step, from, to)``."""
        if self.controller is None:
            return []
        return list(self.controller.mode_history)


def run_scenario(
    config: ScenarioConfig,
    *,
    storage_factory=None,
    placement: str = "level",
) -> ScenarioResult:
    """Run one single-node scenario end to end (deterministic per seed).

    ``storage_factory(sim) -> TieredStorage`` overrides the registered
    ``config.tiers`` preset (used by capacity-pressure experiments);
    ``placement`` names a registered staging strategy.
    """
    session = ScenarioSession(
        config, storage_factory=storage_factory, placement=placement
    )
    app, original, ladder = session.build_ladder()
    dataset = session.stage(f"{config.app}-data", ladder)
    session.launch_noise()
    # Fault campaign, if the config names one.  Scheduled after the noise
    # (fault-free configs schedule nothing here, so the event sequence —
    # and the recorded fingerprints — are untouched).
    if getattr(config, "faults", None):
        session.apply_faults(config.faults)
    controller = session.build_controller(ladder)

    # Scenario-level telemetry: a span around the whole run, a sampler on
    # the contended capacity tier, and one event per completed step.  All
    # of it only exists when observability is enabled, so the default path
    # schedules nothing extra and stays bit-identical.
    sampler: DeviceSampler | None = None
    scenario_span = None
    on_step = None
    if OBS.enabled:
        scenario_span = OBS.tracer.start_span(
            "scenario",
            app=config.app,
            policy=config.policy,
            seed=config.seed,
            max_steps=config.max_steps,
        )
        sampler = DeviceSampler(
            session.sim, session.storage.slowest.device, interval=config.period / 4.0
        ).start()
        # Cancel the sampler's pending tick *before* stopping the
        # containers so idle rows never pad its series.
        session.on_teardown(sampler.stop)

        def on_step(record):
            OBS.tracer.event(
                "step.complete",
                step=record.step,
                io_time=record.io_time,
                io_bytes=record.io_bytes,
                measured_bw=record.measured_bw,
                predicted_bw=record.predicted_bw,
                target_rung=record.target_rung,
                probe_used=record.probe_used,
            )
            reg = OBS.registry
            reg.counter("scenario.steps").inc()
            reg.histogram("scenario.io_time").observe(record.io_time)
            reg.gauge("scenario.measured_bw").set(record.measured_bw)

    driver = session.add_analytics("analytics", dataset, controller, on_step=on_step)
    final_time = session.run()

    result = ScenarioResult(
        config=config,
        records=list(driver.records),
        ladder=ladder,
        dataset=dataset,
        app=app,
        original=original,
        weight_history=list(session.containers["analytics"].cgroup.weight_history),
        final_time=final_time,
        device_samples=list(sampler.samples) if sampler is not None else None,
        controller=controller,
    )
    if scenario_span is not None:
        scenario_span.set(
            steps=len(result.records),
            final_time=final_time,
            mean_io_time=result.mean_io_time if result.records else None,
            weight_adjustments=len(result.weight_history),
        ).end()
    return result
