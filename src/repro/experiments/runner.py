"""Single-node scenario runner: wires every substrate together.

``run_scenario`` builds the two-tier testbed, decomposes and stages the
app's dataset, launches the Table IV noise containers, runs the analytics
under the configured adaptivity policy, and returns a
:class:`ScenarioResult` with everything the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.apps import make_app
from repro.apps.base import AnalyticsApp
from repro.containers import ContainerRuntime
from repro.core.abplot import AugmentationBandwidthPlot
from repro.core.controller import TangoController, make_policy
from repro.core.error_control import AccuracyLadder, ErrorMetric, build_ladder
from repro.core.estimator import (
    BandwidthEstimator,
    DFTEstimator,
    LastValueEstimator,
    MeanEstimator,
)
from repro.core.refactor import decompose, levels_for_decimation
from repro.core.weights import WeightFunction
from repro.experiments.config import ScenarioConfig
from repro.obs import OBS
from repro.simkernel import Simulation
from repro.storage.staging import StagedDataset, stage_dataset
from repro.storage.stats import DeviceSample, DeviceSampler
from repro.storage.tier import TieredStorage
from repro.workloads.analytics import AnalyticsDriver, StepRecord
from repro.workloads.noise import launch_noise

__all__ = ["ScenarioResult", "run_scenario", "build_ladder_for_app"]


def build_ladder_for_app(
    app: AnalyticsApp,
    *,
    grid_shape: tuple[int, int],
    decimation_ratio: int,
    metric: ErrorMetric,
    bounds: tuple[float, ...],
    seed: int,
) -> tuple[np.ndarray, AccuracyLadder]:
    """Generate the app's field, decompose it, and build its ladder."""
    data = app.generate(grid_shape, seed=seed)
    levels = levels_for_decimation(data.shape, decimation_ratio)
    dec = decompose(data, levels)
    ladder = build_ladder(dec, list(bounds), metric)
    return data, ladder


def make_weight_function(
    ladder: AccuracyLadder,
    *,
    use_priority: bool = True,
    use_accuracy: bool = True,
    priority_range: tuple[float, float] = (1.0, 10.0),
) -> WeightFunction:
    """Calibrate the weight function from what this ladder can produce."""
    cards = [b.cardinality for b in ladder.buckets]
    card_max = max(cards) if cards else 1
    card_min = min((c for c in cards if c > 0), default=1)
    bounds = ladder.budget.bounds
    return WeightFunction.calibrated(
        ladder.metric,
        cardinality_range=(card_min, max(card_max, card_min + 1)),
        accuracy_range=(bounds[0], bounds[-1]),
        priority_range=priority_range,
        use_priority=use_priority,
        use_accuracy=use_accuracy,
    )


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    config: ScenarioConfig
    records: list[StepRecord]
    ladder: AccuracyLadder
    dataset: StagedDataset
    app: AnalyticsApp
    original: np.ndarray
    weight_history: list[tuple[float, int]]
    final_time: float
    _outcome_cache: dict[int, float] = field(default_factory=dict)
    #: Capacity-tier device samples, recorded only when observability is
    #: enabled (``None`` otherwise — the disabled path schedules nothing).
    device_samples: list[DeviceSample] | None = None

    # -- I/O performance (Figs 8, 9, 12, 13, 14, 16) -----------------------

    @property
    def io_times(self) -> np.ndarray:
        return np.asarray([r.io_time for r in self.records])

    @property
    def mean_io_time(self) -> float:
        return float(self.io_times.mean())

    @property
    def std_io_time(self) -> float:
        return float(self.io_times.std())

    def io_time_percentile(self, q: float) -> float:
        """Tail latency: the q-th percentile of per-step I/O times."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.io_times, q))

    @property
    def measured_bandwidths(self) -> np.ndarray:
        return np.asarray([r.measured_bw for r in self.records])

    @property
    def predicted_bandwidths(self) -> np.ndarray:
        return np.asarray([r.predicted_bw for r in self.records])

    @property
    def step_times(self) -> np.ndarray:
        return np.asarray([r.started_at for r in self.records])

    # -- data quality (Figs 2, 10) -------------------------------------------

    def outcome_error_at_rung(self, rung: int) -> float:
        """Relative error of the analysis outcome at a ladder rung."""
        if rung not in self._outcome_cache:
            approx = self.ladder.reconstruct(rung)
            self._outcome_cache[rung] = self.app.outcome_error(self.original, approx)
        return self._outcome_cache[rung]

    @property
    def mean_outcome_error(self) -> float:
        """Mean per-step analysis-outcome error, weighting steps equally."""
        errs = [self.outcome_error_at_rung(r.target_rung) for r in self.records]
        return float(np.mean(errs))

    @property
    def mean_target_rung(self) -> float:
        return float(np.mean([r.target_rung for r in self.records]))

    # -- augmentation retrieval latency (Fig 13) ------------------------------

    def mean_latency_to_rung(self, rung: int) -> float:
        """Average I/O time of the steps that reached at least ``rung``."""
        times = [r.io_time for r in self.records if r.target_rung >= rung]
        if not times:
            raise RuntimeError(f"no step reached rung {rung}")
        return float(np.mean(times))


def _make_estimator(config: ScenarioConfig) -> BandwidthEstimator:
    if config.estimator == "dft":
        return DFTEstimator(config.dft_thresh)
    if config.estimator == "mean":
        return MeanEstimator()
    return LastValueEstimator()


def run_scenario(
    config: ScenarioConfig,
    *,
    storage_factory=None,
    placement: str = "level",
) -> ScenarioResult:
    """Run one single-node scenario end to end (deterministic per seed).

    ``storage_factory(sim) -> TieredStorage`` overrides the preset
    hierarchy (used by capacity-pressure experiments); ``placement``
    selects the staging strategy (see :func:`stage_dataset`).
    """
    app = make_app(config.app)
    original, ladder = build_ladder_for_app(
        app,
        grid_shape=config.grid_shape,
        decimation_ratio=config.decimation_ratio,
        metric=config.metric,
        bounds=config.ladder_bounds,
        seed=config.seed,
    )

    sim = Simulation()
    if OBS.enabled:
        OBS.tracer.bind_clock(sim)
    if storage_factory is not None:
        storage = storage_factory(sim)
    elif config.tiers == "three-tier":
        storage = TieredStorage.three_tier_testbed(sim)
    else:
        storage = TieredStorage.two_tier_testbed(sim)
    runtime = ContainerRuntime(sim)
    dataset = stage_dataset(
        f"{config.app}-data",
        ladder,
        storage,
        size_scale=config.size_scale,
        placement=placement,
    )

    launch_noise(
        runtime,
        storage.slowest,
        config.noise,
        seed=config.seed + 1,
        phase_jitter=config.noise_phase_jitter,
        period_jitter=config.noise_period_jitter,
    )

    if config.policy == "storage-only":
        weight_fn = make_weight_function(ladder, use_priority=False, use_accuracy=False)
    elif config.policy == "cross-layer":
        weight_fn = make_weight_function(
            ladder,
            use_priority=config.weight_use_priority,
            use_accuracy=config.weight_use_accuracy,
        )
    else:
        weight_fn = None
    policy = make_policy(
        config.policy, weight_fn, weight_cardinality=config.weight_cardinality
    )

    abplot = AugmentationBandwidthPlot(config.bw_low, config.bw_high)
    if config.error_control:
        prescribed = config.prescribed_bound
    else:
        # No error control: nothing is mandated; retrieval is purely
        # estimate-driven (Fig. 8's configuration).
        prescribed = ladder.base_error
    controller = TangoController(
        ladder,
        policy,
        abplot,
        prescribed_bound=prescribed,
        priority=config.priority,
        estimator=_make_estimator(config),
        estimation_interval=config.estimation_interval,
    )

    # Scenario-level telemetry: a span around the whole run, a sampler on
    # the contended capacity tier, and one event per completed step.  All
    # of it only exists when observability is enabled, so the default path
    # schedules nothing extra and stays bit-identical.
    sampler: DeviceSampler | None = None
    scenario_span = None
    on_step = None
    if OBS.enabled:
        scenario_span = OBS.tracer.start_span(
            "scenario",
            app=config.app,
            policy=config.policy,
            seed=config.seed,
            max_steps=config.max_steps,
        )
        sampler = DeviceSampler(
            sim, storage.slowest.device, interval=config.period / 4.0
        ).start()

        def on_step(record):
            OBS.tracer.event(
                "step.complete",
                step=record.step,
                io_time=record.io_time,
                io_bytes=record.io_bytes,
                measured_bw=record.measured_bw,
                predicted_bw=record.predicted_bw,
                target_rung=record.target_rung,
                probe_used=record.probe_used,
            )
            reg = OBS.registry
            reg.counter("scenario.steps").inc()
            reg.histogram("scenario.io_time").observe(record.io_time)
            reg.gauge("scenario.measured_bw").set(record.measured_bw)

    analytics = runtime.create("analytics")
    driver = AnalyticsDriver(
        analytics,
        dataset,
        controller,
        period=config.period,
        max_steps=config.max_steps,
        on_step=on_step,
    )
    proc = sim.process(driver.workload())
    analytics.attach(proc)

    horizon = config.max_steps * config.period + 600.0
    while proc.is_alive and sim.now < horizon:
        sim.run(until=min(sim.now + config.period, horizon))
    # Teardown: cancel the sampler's pending tick *before* stopping the
    # containers so idle rows never pad its series.
    if sampler is not None:
        sampler.stop()
    runtime.stop_all()

    result = ScenarioResult(
        config=config,
        records=list(driver.records),
        ladder=ladder,
        dataset=dataset,
        app=app,
        original=original,
        weight_history=list(analytics.cgroup.weight_history),
        final_time=sim.now,
        device_samples=list(sampler.samples) if sampler is not None else None,
    )
    if scenario_span is not None:
        scenario_span.set(
            steps=len(result.records),
            final_time=sim.now,
            mean_io_time=result.mean_io_time if result.records else None,
            weight_adjustments=len(result.weight_history),
        ).end()
    return result
