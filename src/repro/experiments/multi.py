"""Multi-analytics scenarios: several adaptive applications on one node.

The paper's target scenario is non-exclusive node usage — in general more
than one data analytics shares the node with the checkpointing noise.
This extension runs N analytics containers, each with its own dataset,
controller, policy, priority, and error bound, over the shared two-tier
storage, and reports per-application results.  The priority term of the
weight function is what differentiates their service (Fig. 14a at the
multi-tenant level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps import make_app
from repro.containers import ContainerRuntime
from repro.core.abplot import AugmentationBandwidthPlot
from repro.core.controller import TangoController, make_policy
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import _make_estimator, build_ladder_for_app, make_weight_function
from repro.simkernel import Simulation
from repro.storage.staging import stage_dataset
from repro.storage.tier import TieredStorage
from repro.workloads.analytics import AnalyticsDriver, StepRecord
from repro.workloads.noise import launch_noise

__all__ = ["TenantSpec", "TenantResult", "MultiScenarioResult", "run_multi_scenario"]


@dataclass(frozen=True)
class TenantSpec:
    """One analytics application in a multi-tenant scenario."""

    name: str
    app: str = "xgc"
    policy: str = "cross-layer"
    priority: float = 10.0
    prescribed_bound: float = 0.01
    seed: int = 0


@dataclass
class TenantResult:
    """Per-tenant outcome."""

    spec: TenantSpec
    records: list[StepRecord]

    @property
    def mean_io_time(self) -> float:
        return float(np.mean([r.io_time for r in self.records]))

    @property
    def std_io_time(self) -> float:
        return float(np.std([r.io_time for r in self.records]))

    @property
    def mean_weight(self) -> float:
        weights = [w for r in self.records for w in r.weights]
        return float(np.mean(weights)) if weights else 0.0

    @property
    def mean_target_rung(self) -> float:
        return float(np.mean([r.target_rung for r in self.records]))


@dataclass
class MultiScenarioResult:
    tenants: dict[str, TenantResult] = field(default_factory=dict)
    final_time: float = 0.0

    def __getitem__(self, name: str) -> TenantResult:
        return self.tenants[name]

    def io_time_ratio(self, numerator: str, denominator: str) -> float:
        """Mean-I/O-time ratio between two tenants (QoS differentiation)."""
        denom = self.tenants[denominator].mean_io_time
        if denom <= 0:
            return float("inf")
        return self.tenants[numerator].mean_io_time / denom


def run_multi_scenario(
    tenants: list[TenantSpec],
    base_config: ScenarioConfig | None = None,
) -> MultiScenarioResult:
    """Run several adaptive analytics against one interfered node.

    Shared infrastructure (storage, noise) comes from ``base_config``;
    per-tenant policy/priority/bound come from each :class:`TenantSpec`.
    Every tenant stages its own dataset copy, so tenants are symmetric
    except for their spec.
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    cfg = base_config if base_config is not None else ScenarioConfig()

    sim = Simulation()
    storage = TieredStorage.two_tier_testbed(sim)
    runtime = ContainerRuntime(sim)
    launch_noise(
        runtime,
        storage.slowest,
        cfg.noise,
        seed=cfg.seed + 1,
        phase_jitter=cfg.noise_phase_jitter,
        period_jitter=cfg.noise_period_jitter,
    )
    abplot = AugmentationBandwidthPlot(cfg.bw_low, cfg.bw_high)

    drivers: dict[str, AnalyticsDriver] = {}
    for spec in tenants:
        app = make_app(spec.app)
        _, ladder = build_ladder_for_app(
            app,
            grid_shape=cfg.grid_shape,
            decimation_ratio=cfg.decimation_ratio,
            metric=cfg.metric,
            bounds=cfg.ladder_bounds,
            seed=spec.seed,
        )
        dataset = stage_dataset(
            f"{spec.name}-data", ladder, storage, size_scale=cfg.size_scale
        )
        if spec.policy == "storage-only":
            weight_fn = make_weight_function(ladder, use_priority=False, use_accuracy=False)
        elif spec.policy == "cross-layer":
            weight_fn = make_weight_function(ladder)
        else:
            weight_fn = None
        controller = TangoController(
            ladder,
            make_policy(spec.policy, weight_fn),
            abplot,
            prescribed_bound=spec.prescribed_bound,
            priority=spec.priority,
            estimator=_make_estimator(cfg),
            estimation_interval=cfg.estimation_interval,
        )
        container = runtime.create(spec.name)
        driver = AnalyticsDriver(
            container, dataset, controller, period=cfg.period, max_steps=cfg.max_steps
        )
        container.attach(sim.process(driver.workload()))
        drivers[spec.name] = driver

    horizon = cfg.max_steps * cfg.period + 600.0
    sim.run(until=horizon)
    runtime.stop_all()

    result = MultiScenarioResult(final_time=sim.now)
    for spec in tenants:
        result.tenants[spec.name] = TenantResult(
            spec=spec, records=list(drivers[spec.name].records)
        )
    return result
