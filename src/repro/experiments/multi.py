"""Multi-analytics scenarios: several adaptive applications on one node.

The paper's target scenario is non-exclusive node usage — in general more
than one data analytics shares the node with the checkpointing noise.
This extension runs N analytics containers, each with its own dataset,
controller, policy, priority, and error bound, over the shared tiered
storage, and reports per-application results.  The priority term of the
weight function is what differentiates their service (Fig. 14a at the
multi-tenant level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import ScenarioSession
from repro.experiments.config import ScenarioConfig
from repro.workloads.analytics import StepRecord

__all__ = ["TenantSpec", "TenantResult", "MultiScenarioResult", "run_multi_scenario"]


@dataclass(frozen=True)
class TenantSpec:
    """One analytics application in a multi-tenant scenario."""

    name: str
    app: str = "xgc"
    policy: str = "cross-layer"
    priority: float = 10.0
    prescribed_bound: float = 0.01
    seed: int = 0


@dataclass
class TenantResult:
    """Per-tenant outcome."""

    spec: TenantSpec
    records: list[StepRecord]

    @property
    def mean_io_time(self) -> float:
        return float(np.mean([r.io_time for r in self.records]))

    @property
    def std_io_time(self) -> float:
        return float(np.std([r.io_time for r in self.records]))

    @property
    def mean_weight(self) -> float:
        weights = [w for r in self.records for w in r.weights]
        return float(np.mean(weights)) if weights else 0.0

    @property
    def mean_target_rung(self) -> float:
        return float(np.mean([r.target_rung for r in self.records]))


@dataclass
class MultiScenarioResult:
    tenants: dict[str, TenantResult] = field(default_factory=dict)
    final_time: float = 0.0

    def __getitem__(self, name: str) -> TenantResult:
        return self.tenants[name]

    def io_time_ratio(self, numerator: str, denominator: str) -> float:
        """Mean-I/O-time ratio between two tenants (QoS differentiation)."""
        denom = self.tenants[denominator].mean_io_time
        if denom <= 0:
            return float("inf")
        return self.tenants[numerator].mean_io_time / denom


def run_multi_scenario(
    tenants: list[TenantSpec],
    base_config: ScenarioConfig | None = None,
) -> MultiScenarioResult:
    """Run several adaptive analytics against one interfered node.

    Shared infrastructure (storage per ``base_config.tiers``, noise)
    comes from ``base_config``; per-tenant policy/priority/bound come
    from each :class:`TenantSpec`.  Every tenant stages its own dataset
    copy, so tenants are symmetric except for their spec.
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    cfg = base_config if base_config is not None else ScenarioConfig()

    session = ScenarioSession(cfg)
    session.launch_noise()
    for spec in tenants:
        _, _, ladder = session.build_ladder(app=spec.app, seed=spec.seed)
        dataset = session.stage(f"{spec.name}-data", ladder)
        controller = session.build_controller(
            ladder,
            policy=spec.policy,
            priority=spec.priority,
            prescribed_bound=spec.prescribed_bound,
            # Tenants always get the fully-calibrated weight shape; the
            # base config's ablation flags only apply to single-node runs.
            weight_use_priority=True,
            weight_use_accuracy=True,
            weight_cardinality="bucket",
        )
        session.add_analytics(spec.name, dataset, controller)

    # Multi-tenant semantics: the node stays up for the whole window
    # (tenants finish at different times), so run straight to the horizon.
    final_time = session.run(chunk=None)

    result = MultiScenarioResult(final_time=final_time)
    for spec in tenants:
        result.tenants[spec.name] = TenantResult(
            spec=spec, records=list(session.drivers[spec.name].records)
        )
    return result
