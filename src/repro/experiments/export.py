"""Structured export of experiment results.

``format_rows()`` gives humans the paper-style text; this module gives
plotting scripts the underlying numbers as JSON-ready structures.  Any
experiment result (the frozen dataclasses each ``figNN`` module returns)
converts generically: dataclasses recurse, NumPy scalars/arrays become
plain Python, dict keys stringify.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "export_result", "export_figure"]


def to_jsonable(obj: Any) -> Any:
    """Convert an experiment result into JSON-serialisable structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, float) and not np.isfinite(obj):
        return str(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    # Enums, paths, and other leaf objects: fall back to their repr-name.
    value = getattr(obj, "value", None)
    if isinstance(value, (str, int, float)):
        return value
    return str(obj)


def export_result(result: Any, path: str) -> dict:
    """Write a result's JSON form to ``path``; returns the structure."""
    data = to_jsonable(result)
    with open(path, "w") as f:
        json.dump(data, f, indent=2)
    return data


def export_figure(
    name: str, path: str, *, fast: bool = True, workers: int | str | None = 1
) -> dict:
    """Run a registered artifact (see :data:`repro.cli.FIGURES`) and export it."""
    from repro.cli import FIGURES

    try:
        runner = FIGURES[name]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}; expected one of {sorted(FIGURES)}")
    return export_result(runner(fast, workers=workers), path)
