"""Fig. 11 — percentage of degrees of freedom retrieved vs error bound.

For each app, build ladders over a range of NRMSE and PSNR bounds and
report the fraction of the original degrees of freedom (base + retrieved
coefficients) needed to satisfy each bound.  The paper's headline:
< 30 % of the data maintains ε = 1e-5 NRMSE / 80 dB PSNR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS, make_app
from repro.core.error_control import ErrorMetric, build_ladder
from repro.core.refactor import decompose, levels_for_decimation
from repro.experiments.config import DEFAULTS
from repro.experiments.report import format_table

__all__ = ["Fig11Result", "run_fig11", "NRMSE_BOUNDS", "PSNR_BOUNDS"]

NRMSE_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
PSNR_BOUNDS = (30.0, 40.0, 50.0, 60.0, 80.0)


@dataclass(frozen=True)
class Fig11Row:
    app: str
    metric: str
    bound: float
    dof_fraction: float
    achieved_error: float


@dataclass(frozen=True)
class Fig11Result:
    rows: tuple[Fig11Row, ...]

    def for_metric(self, metric: str) -> list[Fig11Row]:
        return [r for r in self.rows if r.metric == metric]

    def max_dof_at_tightest(self, metric: str) -> float:
        rows = self.for_metric(metric)
        tight = max(r.bound for r in rows) if metric == "psnr" else min(r.bound for r in rows)
        return max(r.dof_fraction for r in rows if r.bound == tight)

    def format_rows(self) -> str:
        return format_table(
            ["App", "Metric", "Bound", "DoF retrieved", "Achieved"],
            [
                (r.app, r.metric, f"{r.bound:g}", f"{100 * r.dof_fraction:.1f}%",
                 f"{r.achieved_error:.3g}")
                for r in self.rows
            ],
            title="Fig 11: degrees of freedom retrieved vs error bound",
        )


def over_resolved_field(shape: tuple[int, int] = (1024, 1024), modes: int = 2) -> "np.ndarray":
    """A smooth, over-resolved field: a few long-wavelength trig modes.

    The paper's datasets (60–95 M mesh points) resolve their physics with
    thousands of samples per feature wavelength; this field reproduces
    that regime at laptop scale, which is what makes tight error bounds
    reachable from a small fraction of the degrees of freedom.
    """
    import numpy as np

    ny, nx = shape
    y = np.linspace(0.0, 1.0, ny)[:, None]
    x = np.linspace(0.0, 1.0, nx)[None, :]
    field = np.zeros(shape)
    for k in range(1, modes + 1):
        field += np.sin(2 * np.pi * k * x + 0.3 * k) * np.cos(2 * np.pi * k * y - 0.2 * k) / k
    return field


def run_fig11(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    grid_shape: tuple[int, int] = DEFAULTS.grid_shape,
    decimation_ratio: int = DEFAULTS.decimation_ratio,
    seed: int = 0,
    include_over_resolved: bool = True,
) -> Fig11Result:
    """Sweep both metrics' bound ranges per app.

    ``include_over_resolved`` adds the paper-regime smooth field (see
    :func:`over_resolved_field`), which exhibits the paper's "< 30 % of
    DoF reaches ε = 1e-5 NRMSE / 80 dB PSNR" behaviour; the three
    laptop-scale app fields show the same monotone shape shifted toward
    larger fractions (they are far less over-resolved).
    """
    cases: list[tuple[str, "np.ndarray"]] = []
    for app_name in apps:
        app = make_app(app_name)
        cases.append((app_name, app.generate(grid_shape, seed=seed)))
    if include_over_resolved:
        cases.append(("over-resolved", over_resolved_field()))

    rows: list[Fig11Row] = []
    for name, field in cases:
        levels = levels_for_decimation(field.shape, decimation_ratio)
        dec = decompose(field, levels)
        for metric, bounds in (
            (ErrorMetric.NRMSE, NRMSE_BOUNDS),
            (ErrorMetric.PSNR, PSNR_BOUNDS),
        ):
            ladder = build_ladder(dec, list(bounds), metric)
            for bkt in ladder.buckets:
                rows.append(
                    Fig11Row(
                        app=name,
                        metric=metric.value,
                        bound=bkt.bound,
                        dof_fraction=ladder.dof_fraction(bkt.index),
                        achieved_error=bkt.achieved_error,
                    )
                )
    return Fig11Result(rows=tuple(rows))
