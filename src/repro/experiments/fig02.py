"""Fig. 2 — accuracy of a reduced representation vs decimation ratio.

For each analytics app and decimation ratio, reconstruct from the base
representation alone and report the PSNR of the data and the relative
error of the analysis outcome.  The paper's observation: even at extreme
decimation, outcome error stays moderate (≤ ~25 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS, make_app
from repro.core.metrics import psnr
from repro.core.refactor import decompose, levels_for_decimation, reconstruct_base_only
from repro.experiments.report import format_table

__all__ = ["Fig2Result", "run_fig02", "DEFAULT_DECIMATION_RATIOS"]

DEFAULT_DECIMATION_RATIOS = (4, 16, 64, 256, 512)


@dataclass(frozen=True)
class Fig2Row:
    app: str
    decimation_ratio: int
    achieved_decimation: float
    psnr_db: float
    outcome_error: float


@dataclass(frozen=True)
class Fig2Result:
    rows: tuple[Fig2Row, ...]

    def for_app(self, app: str) -> list[Fig2Row]:
        return [r for r in self.rows if r.app == app]

    def format_rows(self) -> str:
        return format_table(
            ["App", "Decimation", "Achieved", "PSNR (dB)", "Outcome rel. err"],
            [
                (r.app, r.decimation_ratio, f"{r.achieved_decimation:.0f}",
                 f"{r.psnr_db:.1f}", f"{r.outcome_error:.3f}")
                for r in self.rows
            ],
            title="Fig 2: accuracy of the reduced representation",
        )


def run_fig02(
    *,
    apps: tuple[str, ...] = ALL_APPS,
    ratios: tuple[int, ...] = DEFAULT_DECIMATION_RATIOS,
    grid_shape: tuple[int, int] = (256, 256),
    seed: int = 0,
) -> Fig2Result:
    """Sweep decimation ratios per app, scoring the base-only reconstruction."""
    rows: list[Fig2Row] = []
    for app_name in apps:
        app = make_app(app_name)
        field = app.generate(grid_shape, seed=seed)
        for ratio in ratios:
            levels = levels_for_decimation(field.shape, ratio)
            dec = decompose(field, levels)
            approx = reconstruct_base_only(dec)
            rows.append(
                Fig2Row(
                    app=app_name,
                    decimation_ratio=ratio,
                    achieved_decimation=dec.achieved_decimation,
                    psnr_db=psnr(field, approx),
                    outcome_error=app.outcome_error(field, approx),
                )
            )
    return Fig2Result(rows=tuple(rows))
