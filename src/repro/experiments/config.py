"""Experiment defaults (Section IV-A) and the scenario configuration.

Paper defaults reproduced here:

* decimation ratio 16 for the reduced representation;
* default blkio weight 100 per container;
* estimation every 30 timesteps, analytics period 60 s;
* DFT threshold 50 % of the maximum amplitude;
* ``BW_low`` = 30 MB/s, ``BW_high`` = 120 MB/s;
* priorities 1 (low), 5 (medium), 10 (high);
* six Table IV interfering containers on the HDD.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import SimpleNamespace

from repro.core.error_control import ErrorMetric
from repro.faults.retry import RetryPolicy
from repro.util.units import mb_per_s
from repro.util.validation import rename_deprecated, warn_deprecated
from repro.workloads.noise import TABLE_IV_NOISE, NoiseSpec

__all__ = ["ScenarioConfig", "DEFAULTS", "PRIORITY_LOW", "PRIORITY_MEDIUM", "PRIORITY_HIGH"]

PRIORITY_LOW = 1.0
PRIORITY_MEDIUM = 5.0
PRIORITY_HIGH = 10.0

#: Paper-wide constants in one place (Section IV-A).
DEFAULTS = SimpleNamespace(
    decimation_ratio=16,
    default_blkio_weight=100,
    estimation_interval=30,
    analytics_period=60.0,
    dft_thresh=0.5,
    bw_low=mb_per_s(30),
    bw_high=mb_per_s(120),
    priorities=(PRIORITY_LOW, PRIORITY_MEDIUM, PRIORITY_HIGH),
    grid_shape=(256, 256),
    #: Inflates staged file sizes to the paper's per-step dataset scale
    #: (~0.5 GB for a 256² float64 grid).
    size_scale=1000.0,
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one single-node scenario."""

    app: str = "xgc"
    policy: str = "cross-layer"
    grid_shape: tuple[int, int] = DEFAULTS.grid_shape
    decimation_ratio: int = DEFAULTS.decimation_ratio
    metric: ErrorMetric = ErrorMetric.NRMSE
    #: Accuracy-ladder rung error bounds (canonical spelling; the legacy
    #: ``ladder_bounds`` keyword/attribute still works via a shim).
    error_bounds: tuple[float, ...] = (0.1, 0.01, 0.001, 0.0001)
    prescribed_bound: float | None = 0.01
    error_control: bool = True
    priority: float = PRIORITY_HIGH
    noise: tuple[NoiseSpec, ...] = TABLE_IV_NOISE
    noise_phase_jitter: float = 1.0
    noise_period_jitter: float = 0.005
    period: float = DEFAULTS.analytics_period
    max_steps: int = 60
    estimation_interval: int = DEFAULTS.estimation_interval
    #: Bandwidth estimator: "dft" (the paper's), or the ablation baselines
    #: "mean" / "last".
    estimator: str = "dft"
    dft_thresh: float = DEFAULTS.dft_thresh
    bw_low: float = DEFAULTS.bw_low
    bw_high: float = DEFAULTS.bw_high
    size_scale: float = DEFAULTS.size_scale
    #: Storage hierarchy: "two-tier" (the paper's testbed) or "three-tier"
    #: (the Fig. 3 illustration with an NVMe performance tier).
    tiers: str = "two-tier"
    #: Weight-function ablation (Fig 13): drop the priority and/or accuracy
    #: terms from the cross-layer weight function.
    weight_use_priority: bool = True
    weight_use_accuracy: bool = True
    #: Cardinality fed to the weight function per retrieval: each bucket's
    #: own ("bucket") or the step's total ("total", the paper's Fig. 15
    #: reading where only the accuracy term varies within a step).
    weight_cardinality: str = "bucket"
    #: Fault campaign name from the FAULT_CAMPAIGNS registry (e.g.
    #: "chaos"), or None for the happy path.
    faults: str | None = None
    #: Retry/backoff policy for the analytics reader; None means the
    #: legacy one-retry-then-skip default.
    retry: RetryPolicy | None = None
    #: QoS data-plane stage stack: (classify, enforce, schedule) names
    #: from the CLASSIFY/ENFORCE/SCHEDULE_STAGES registries.  The default
    #: re-expresses the legacy weight/throttle mechanism bit-identically.
    stage_stack: tuple[str, str, str] = ("cgroup", "blkio", "fifo")
    #: Declarative per-tenant QoS policies as (tenant, QosPolicy) pairs —
    #: a tuple (not a dict) so configs stay hashable and sweepable.
    #: Tenant names are whatever the classify stage produces (container
    #: names for the default "cgroup" classifier).
    qos_policies: tuple = ()
    #: Admission limit for the "priority" schedule stage (requests in
    #: flight per device); None = unlimited.
    max_inflight: int | None = None
    #: Controller graceful degradation: when True (default), bad feed
    #: samples walk the fallback ladder instead of raising.
    degradation: bool = True
    #: Adaptation controller from the CONTROLLERS registry: "tango" (the
    #: paper's estimator loop), "pid", "mpc", or anything plugged in.
    controller: str = "tango"
    #: Per-controller tuning overrides as (name, value) pairs naming
    #: :class:`repro.control.ControllerConfig` fields — a tuple (not a
    #: dict) so configs stay hashable and sweepable, e.g.
    #: ``(("mpc_horizon", 8),)``.
    controller_params: tuple = ()
    #: Event-queue kernel: "calendar" (epoch-batched calendar queue, the
    #: default) or "heap" (the binary-heap parity oracle).  Both execute
    #: events in identical order, so results are kernel-independent.
    kernel: str = "calendar"
    #: Ready-entry dispatch: "batched" (the default — consecutive entries
    #: bound to the same batchable handler on the same receiver collapse
    #: into one group call per epoch) or "scalar" (one Python callback
    #: per entry, the parity oracle).  Both modes produce identical
    #: traces and fingerprints; the axis exists so parity stays testable.
    dispatch: str = "batched"
    seed: int = 0

    def with_(self, **changes) -> "ScenarioConfig":
        """A modified copy (sugar over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    def __post_init__(self) -> None:
        # Component names are validated against the engine registries, so
        # a config can name anything registered — built-in or plugged in.
        # Imported lazily: the registry package imports component modules
        # that themselves import this config module.
        from repro.engine.registry import ESTIMATORS, POLICIES, STORAGE_PRESETS

        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES.names()}"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if not self.bw_low < self.bw_high:
            raise ValueError(
                f"bw_low must be < bw_high, got bw_low={self.bw_low} "
                f"bw_high={self.bw_high}"
            )
        if not self.error_bounds:
            raise ValueError("error_bounds must be non-empty")
        if self.prescribed_bound is None and self.error_control:
            raise ValueError("error_control=True requires a prescribed_bound")
        if self.estimator not in ESTIMATORS:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; "
                f"expected one of {ESTIMATORS.names()}"
            )
        if self.tiers not in STORAGE_PRESETS:
            raise ValueError(
                f"unknown storage preset {self.tiers!r}; "
                f"expected one of {STORAGE_PRESETS.names()}"
            )
        if self.kernel not in ("calendar", "heap"):
            raise ValueError(
                f"kernel must be 'calendar' or 'heap', got {self.kernel!r}"
            )
        if self.dispatch not in ("batched", "scalar"):
            raise ValueError(
                f"dispatch must be 'batched' or 'scalar', got {self.dispatch!r}"
            )
        if self.weight_cardinality not in ("bucket", "total"):
            raise ValueError(
                f"weight_cardinality must be 'bucket' or 'total', "
                f"got {self.weight_cardinality!r}"
            )
        if self.faults is not None:
            from repro.engine.registry import FAULT_CAMPAIGNS

            if self.faults not in FAULT_CAMPAIGNS:
                raise ValueError(
                    f"unknown fault campaign {self.faults!r}; "
                    f"expected one of {FAULT_CAMPAIGNS.names()}"
                )
        _validate_controller_fields(self)
        _validate_dataplane_fields(self)


def _validate_controller_fields(config) -> None:
    """Shared controller-axis validation (ScenarioConfig + CampaignConfig)."""
    from repro.engine.registry import CONTROLLERS

    if config.controller not in CONTROLLERS:
        raise ValueError(
            f"unknown controller {config.controller!r}; "
            f"expected one of {CONTROLLERS.names()}"
        )
    from repro.control.config import CONTROLLER_PARAM_NAMES

    for entry in config.controller_params:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            raise ValueError(
                f"controller_params entries must be (name, value) pairs, got {entry!r}"
            )
        name, _ = entry
        if name not in CONTROLLER_PARAM_NAMES:
            raise ValueError(
                f"unknown controller parameter {name!r}; "
                f"expected one of {sorted(CONTROLLER_PARAM_NAMES)}"
            )


def _validate_dataplane_fields(config) -> None:
    """Shared stage-stack/policy validation (ScenarioConfig + CampaignConfig)."""
    from repro.engine.registry import CLASSIFY_STAGES, ENFORCE_STAGES, SCHEDULE_STAGES

    stack = config.stage_stack
    if len(stack) != 3:
        raise ValueError(
            f"stage_stack must be (classify, enforce, schedule), got {stack!r}"
        )
    for name, registry in zip(stack, (CLASSIFY_STAGES, ENFORCE_STAGES, SCHEDULE_STAGES)):
        if name not in registry:
            raise ValueError(
                f"unknown {registry.kind} {name!r}; expected one of {registry.names()}"
            )
    # Imported lazily — the dataplane package pulls in storage modules
    # that are heavyweight relative to a config-only import.
    from repro.dataplane.policy import QosPolicy

    seen = set()
    for entry in config.qos_policies:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            raise ValueError(
                f"qos_policies entries must be (tenant, QosPolicy) pairs, got {entry!r}"
            )
        tenant, policy = entry
        if not tenant or not isinstance(tenant, str):
            raise ValueError(f"qos_policies tenant must be a non-empty string, got {tenant!r}")
        if not isinstance(policy, QosPolicy):
            raise ValueError(
                f"qos_policies[{tenant!r}] must be a QosPolicy, got {policy!r}"
            )
        if tenant in seen:
            raise ValueError(f"duplicate qos_policies tenant {tenant!r}")
        seen.add(tenant)
    if config.max_inflight is not None and config.max_inflight < 1:
        raise ValueError(f"max_inflight must be >= 1, got {config.max_inflight}")


# -- deprecation shims ----------------------------------------------------
#
# ``ladder_bounds`` was renamed to ``error_bounds`` (one canonical
# spelling across configs, build_ladder, and the ladder APIs).  The old
# keyword and attribute keep working for one release, loudly.

_scenario_config_init = ScenarioConfig.__init__


def _scenario_config_init_shim(self, *args, **kwargs):
    rename_deprecated(
        kwargs, {"ladder_bounds": "error_bounds"}, context="ScenarioConfig"
    )
    _scenario_config_init(self, *args, **kwargs)


_scenario_config_init_shim.__wrapped__ = _scenario_config_init
ScenarioConfig.__init__ = _scenario_config_init_shim


def _ladder_bounds_compat(self) -> tuple[float, ...]:
    warn_deprecated(
        "ScenarioConfig.ladder_bounds is deprecated; use error_bounds"
    )
    return self.error_bounds


ScenarioConfig.ladder_bounds = property(_ladder_bounds_compat)
