"""Controller stability suite: the controller family under reference inputs.

Classic control-theoretic probes expressed as fault campaigns on the
capacity tier's speed factor — a step, a ramp, and a square-wave
oscillation (``stability-step`` / ``stability-ramp`` / ``stability-osc``
in the FAULT_CAMPAIGNS registry).  Every controller in the CONTROLLERS
registry (or any subset) runs the same scenario under each input, and
its *prediction trace* is scored like a step response:

* **settling time** — seconds after the disturbance onset until the
  prediction stays within a ±5 % band of its final value;
* **overshoot** — how far the prediction swung past its final value,
  as a fraction of the commanded change (0 when it approached
  monotonically);
* **steady-state error** — relative gap between the predicted and
  measured bandwidth over the final fifth of the run;
* **SLO violations** — steps whose I/O time exceeded half the analytics
  period, the scenario's implicit deadline.

Cells are independent scenario runs, so the suite fans out over a
:class:`~repro.engine.sweep.SweepExecutor` process pool; values are
identical serial or parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.sweep import SweepExecutor
from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario
from repro.obs import OBS

__all__ = [
    "STABILITY_INPUTS",
    "StabilityRow",
    "StabilityResult",
    "run_stability",
]

#: Reference-input name → fault campaign realising it.
STABILITY_INPUTS = {
    "step": "stability-step",
    "ramp": "stability-ramp",
    "osc": "stability-osc",
}

#: Where each input's disturbance begins, as a fraction of the run
#: (matches the campaign definitions in :mod:`repro.faults.campaign`).
_ONSET_FRACTIONS = {"step": 0.35, "ramp": 0.30, "osc": 0.30}

#: Settling band: ±5 % of the trace's final value.
_SETTLE_BAND = 0.05

_EPS = 1e-12


@dataclass(frozen=True)
class StabilityRow:
    """One (controller, reference input) cell of the suite."""

    controller: str
    reference: str
    steps_completed: int
    #: Seconds from disturbance onset until the prediction trace stays
    #: within the settling band; NaN if it never settles.
    settling_time_s: float
    #: Peak excursion past the final value, relative to the commanded
    #: change (0.0 = no overshoot).
    overshoot: float
    #: |predicted − measured| / measured over the final fifth of the run.
    steady_state_error: float
    #: Steps whose I/O time exceeded half the analytics period.
    slo_violations: int
    mean_io_time: float


@dataclass(frozen=True)
class StabilityResult:
    """All cells of one stability-suite invocation."""

    rows: tuple[StabilityRow, ...]

    def cell(self, controller: str, reference: str) -> StabilityRow:
        for r in self.rows:
            if r.controller == controller and r.reference == reference:
                return r
        raise KeyError(f"no row for ({controller!r}, {reference!r})")

    def format_rows(self) -> str:
        def fmt(v: float) -> str:
            return "unsettled" if np.isnan(v) else f"{v:.0f}"

        return format_table(
            ["Controller", "Input", "Steps", "Settling (s)", "Overshoot",
             "SS error", "SLO misses", "Mean I/O (s)"],
            [
                (r.controller, r.reference, r.steps_completed,
                 fmt(r.settling_time_s), f"{r.overshoot:.2f}",
                 f"{r.steady_state_error:.2f}", r.slo_violations,
                 f"{r.mean_io_time:.2f}")
                for r in self.rows
            ],
            title="Controller stability suite (prediction-trace response "
            "to speed-factor reference inputs)",
        )


def _score_trace(
    predicted: np.ndarray,
    measured: np.ndarray,
    *,
    onset_fraction: float,
    period: float,
) -> tuple[float, float, float]:
    """(settling_time_s, overshoot, steady_state_error) for one trace."""
    pred = np.asarray(predicted, dtype=np.float64)
    n = len(pred)
    onset = int(round(onset_fraction * n))
    tail = max(3, n // 5)
    if n < 4 or onset >= n or onset < 1:
        return float("nan"), 0.0, float("nan")

    final = float(np.mean(pred[-tail:]))
    post = pred[onset:]

    # Settling: last index (post-onset) outside ±5 % of the final value.
    band = _SETTLE_BAND * max(abs(final), _EPS)
    outside = np.flatnonzero(np.abs(post - final) > band)
    if outside.size and outside[-1] == len(post) - 1:
        settling_s = float("nan")  # still outside the band at the end
    else:
        idx = int(outside[-1]) + 1 if outside.size else 0
        settling_s = idx * period

    # Overshoot: excursion past the final value, relative to the change
    # commanded by the disturbance (pre-onset mean → final).
    pre = float(np.mean(pred[:onset]))
    change = final - pre
    if abs(change) <= _EPS * max(abs(pre), 1.0):
        overshoot = 0.0
    elif change < 0:
        overshoot = max(0.0, (final - float(np.min(post))) / abs(change))
    else:
        overshoot = max(0.0, (float(np.max(post)) - final) / abs(change))

    meas_tail = float(np.mean(np.asarray(measured, dtype=np.float64)[-tail:]))
    ss_error = abs(float(np.mean(pred[-tail:])) - meas_tail) / max(meas_tail, _EPS)
    return settling_s, overshoot, ss_error


def _stability_cell(item: tuple[str, str, ScenarioConfig]) -> StabilityRow:
    """One suite cell; module-level so process pools can pickle it."""
    controller, reference, cfg = item
    res = run_scenario(cfg)
    settling_s, overshoot, ss_error = _score_trace(
        res.predicted_bandwidths,
        res.measured_bandwidths,
        onset_fraction=_ONSET_FRACTIONS[reference],
        period=cfg.period,
    )
    io_times = res.io_times
    return StabilityRow(
        controller=controller,
        reference=reference,
        steps_completed=len(res.records),
        settling_time_s=settling_s,
        overshoot=overshoot,
        steady_state_error=ss_error,
        slo_violations=int(np.count_nonzero(io_times > 0.5 * cfg.period)),
        mean_io_time=float(io_times.mean()) if res.records else float("nan"),
    )


def run_stability(
    *,
    app: str = "xgc",
    policy: str = "cross-layer",
    controllers: tuple[str, ...] = ("tango", "pid", "mpc"),
    inputs: tuple[str, ...] = ("step", "ramp", "osc"),
    max_steps: int = 40,
    seed: int = 0,
    workers: int = 1,
) -> StabilityResult:
    """Score each controller's response to each reference input.

    Deterministic per seed: every cell shares the same seed, so all
    controllers see the same interference alignment and the same
    disturbance — the rows isolate the controller.
    """
    for ref in inputs:
        if ref not in STABILITY_INPUTS:
            raise ValueError(
                f"unknown stability input {ref!r}; "
                f"expected one of {tuple(STABILITY_INPUTS)}"
            )
    base = ScenarioConfig(app=app, policy=policy, max_steps=max_steps, seed=seed)
    items = [
        (ctrl, ref, base.with_(controller=ctrl, faults=STABILITY_INPUTS[ref]))
        for ctrl in controllers
        for ref in inputs
    ]
    with SweepExecutor(workers) as ex:
        rows = ex.map(_stability_cell, items)

    if OBS.enabled:
        reg = OBS.registry
        for row in rows:
            labels = {"controller": row.controller, "reference": row.reference}
            reg.counter("stability.cells").inc(**labels)
            if not np.isnan(row.settling_time_s):
                reg.gauge("stability.settling_time_s").set(
                    row.settling_time_s, **labels
                )
            reg.gauge("stability.overshoot").set(row.overshoot, **labels)
            OBS.tracer.event(
                "stability.cell",
                controller=row.controller,
                reference=row.reference,
                settling_time_s=row.settling_time_s,
                overshoot=row.overshoot,
                steady_state_error=row.steady_state_error,
                slo_violations=row.slo_violations,
            )

    return StabilityResult(rows=tuple(rows))
