"""The paper's survey tables (Table I, Table II) and the noise config
(Table IV), reproduced as data so the benches can print them verbatim."""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.util.units import MiB
from repro.workloads.noise import TABLE_IV_NOISE

__all__ = ["TABLE_I", "TABLE_II", "table1_text", "table2_text", "table4_text"]

#: Table I — QoS in HPC file systems.
TABLE_I = [
    # (file system, per-app control, runtime adjust, QoS mechanism, scheduling)
    ("Lustre (>2.6)", False, False, "Throttling", "Token bucket filter"),
    (
        "Spectrum Scale (5.0.4)",
        False,
        False,
        "Throttling for two QoS classes per storage pool",
        "Unknown",
    ),
    ("Ceph (13.2.6)", False, False, "Throttling", "dmclock"),
    ("OrangeFS (2.9.7)", False, False, "None", "None"),
    (
        "Ext4 with cgroups",
        True,
        True,
        "Proportional weight, throttling",
        "Completely fair scheduling",
    ),
]

#: Table II — comparison with existing methods.
TABLE_II = [
    # (work, storage layer, app layer, technique)
    ("[18], [19]", True, False, "Traffic re-routing and throttling based upon queue length"),
    ("[17]", False, True, "Explicit application coordination through new APIs"),
    ("[26]", True, False, "Randomized I/O scheduling"),
    ("[3]", False, True, "Interference estimation and adaptive data retrieval"),
    ("[2]", False, True, "Data retrieval under no interference"),
    (
        "Tango",
        True,
        True,
        "Cross-layer coordination involving storage- and application-layer adaptivity",
    ),
]


def _check(flag: bool) -> str:
    return "yes" if flag else "no"


def table1_text() -> str:
    rows = [(fs, _check(a), _check(r), qos, sched) for fs, a, r, qos, sched in TABLE_I]
    return format_table(
        ["File system", "Per-app control", "Runtime adjust", "QoS mechanism", "Scheduling"],
        rows,
        title="Table I: QoS in HPC file systems",
    )


def table2_text() -> str:
    rows = [(w, _check(s), _check(a), t) for w, s, a, t in TABLE_II]
    return format_table(
        ["Work", "Storage layer", "App layer", "Technique"],
        rows,
        title="Table II: Comparison with existing methods",
    )


def table4_text() -> str:
    rows = [
        (spec.name, f"{spec.period:.0f} secs", f"{spec.checkpoint_bytes // MiB} MB")
        for spec in TABLE_IV_NOISE
    ]
    return format_table(
        ["Noise", "Period", "Checkpoint size"],
        rows,
        title="Table IV: Noise injected to HDD",
    )
