"""Resilience experiment: the cross-layer stack under a fault campaign.

Runs the standard single-node scenario three ways — fault-free, under a
seeded fault campaign with the legacy single-retry policy, and under the
same campaign with a hardened retry/backoff policy — and reports how the
stack degrades: read errors absorbed, objects explicitly skipped, steps
whose accuracy is no longer within bound, and the controller's
degradation-ladder transitions.

The headline claim is *graceful* degradation: every configuration
completes all its steps (no crash, no hang), and any step that could not
honour the ladder's error bound says so via ``skipped_objects`` instead
of silently returning bad data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_scenario
from repro.faults import CONTROLLER_MODES, MODE_NORMAL, RetryPolicy

__all__ = ["ResilienceRow", "ResilienceResult", "run_resilience"]

#: The hardened policy the third configuration uses: more attempts with
#: exponential sim-time backoff (deterministically jittered per driver).
HARDENED_RETRY = RetryPolicy(
    max_attempts=4, backoff_base=0.25, backoff_multiplier=2.0, jitter=0.25
)


@dataclass(frozen=True)
class ResilienceRow:
    label: str
    steps_completed: int
    mean_io_time: float
    read_errors: int
    skipped_objects: int
    degraded_steps: int
    mode_transitions: int
    deepest_mode: str


@dataclass(frozen=True)
class ResilienceResult:
    rows: tuple[ResilienceRow, ...]
    campaign: str

    def cell(self, label: str) -> ResilienceRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row for {label!r}")

    def format_rows(self) -> str:
        return format_table(
            ["Config", "Steps", "Mean I/O (s)", "Errors", "Skipped",
             "Degraded steps", "Mode moves", "Deepest mode"],
            [
                (r.label, r.steps_completed, f"{r.mean_io_time:.2f}",
                 r.read_errors, r.skipped_objects, r.degraded_steps,
                 r.mode_transitions, r.deepest_mode)
                for r in self.rows
            ],
            title=f"Resilience: campaign {self.campaign!r} "
            "(cross-layer; skipped steps are reported, not hidden)",
        )


def _deepest_mode(transitions: list[tuple[int, str, str]]) -> str:
    deepest = MODE_NORMAL
    for _, _, to_mode in transitions:
        if CONTROLLER_MODES.index(to_mode) > CONTROLLER_MODES.index(deepest):
            deepest = to_mode
    return deepest


def _row(label: str, cfg: ScenarioConfig) -> ResilienceRow:
    res = run_scenario(cfg)
    return ResilienceRow(
        label=label,
        steps_completed=len(res.records),
        mean_io_time=float(np.mean(res.io_times)) if res.records else float("nan"),
        read_errors=res.total_read_errors,
        skipped_objects=res.total_skipped_objects,
        degraded_steps=len(res.degraded_steps),
        mode_transitions=len(res.mode_transitions),
        deepest_mode=_deepest_mode(res.mode_transitions),
    )


def run_resilience(
    *,
    app: str = "xgc",
    campaign: str = "chaos",
    max_steps: int = 40,
    seed: int = 0,
) -> ResilienceResult:
    """Fault-free vs fault campaign vs campaign + hardened retries."""
    base = ScenarioConfig(app=app, policy="cross-layer", max_steps=max_steps, seed=seed)
    rows = (
        _row("fault-free", base),
        _row("faults", base.with_(faults=campaign)),
        _row("faults+retry", base.with_(faults=campaign, retry=HARDENED_RETRY)),
    )
    return ResilienceResult(rows=rows, campaign=campaign)
