"""Tango: cross-layer management of I/O interference over local ephemeral
storage (reproduction of the SC'24 paper).

Public API tour
---------------

Core contribution (:mod:`repro.core`):
    :func:`~repro.core.decompose` / :func:`~repro.core.build_ladder` —
    error-bounded hierarchical refactorization;
    :class:`~repro.core.DFTEstimator` — interference estimation;
    :class:`~repro.core.AugmentationBandwidthPlot` and
    :class:`~repro.core.WeightFunction` — the cross-layer coordination maps;
    :class:`~repro.core.TangoController` — the per-application adaptation
    loop, with the four policies of the paper's comparison matrix.

Substrates:
    :mod:`repro.simkernel` — discrete-event simulation engine;
    :mod:`repro.storage` — block devices with proportional-weight fluid
    scheduling, cgroups, filesystems, tiers, staging;
    :mod:`repro.containers` — docker-like container runtime;
    :mod:`repro.workloads` — noise containers and the analytics driver;
    :mod:`repro.apps` — XGC / GenASiS / CFD analytics with synthetic data.

Evaluation (:mod:`repro.experiments`): one module per paper table/figure;
see DESIGN.md for the experiment index.
"""

from repro.core import (
    AccuracyLadder,
    AugmentationBandwidthPlot,
    CrossLayerPolicy,
    Decomposition,
    DFTEstimator,
    ErrorMetric,
    TangoController,
    WeightFunction,
    build_ladder,
    decompose,
    make_policy,
    nrmse,
    psnr,
    recompose_full,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyLadder",
    "AugmentationBandwidthPlot",
    "CrossLayerPolicy",
    "Decomposition",
    "DFTEstimator",
    "ErrorMetric",
    "TangoController",
    "WeightFunction",
    "build_ladder",
    "decompose",
    "make_policy",
    "nrmse",
    "psnr",
    "recompose_full",
    "__version__",
]
