"""A small discrete-event simulation kernel.

Provides the event loop, one-shot events, timeouts, and generator-based
processes that the storage/container/workload substrates are built on.
Two interchangeable event-queue kernels (epoch-batched calendar queue,
binary-heap parity oracle) execute callbacks in identical ``(time, seq)``
order — cancellable scheduled callbacks, deterministic FIFO tie-breaking
at equal timestamps — so every experiment is bit-reproducible for a
given seed regardless of kernel.
"""

from repro.simkernel.sim import (
    SimError,
    Simulation,
    UnhandledFailureError,
    UnhandledFailureWarning,
    tick_time,
)
from repro.simkernel.events import (
    Event,
    EventAlreadyTriggered,
    ScheduledCallback,
    batch_dispatch,
)
from repro.simkernel.process import Process, Timeout, Interrupt

__all__ = [
    "Simulation",
    "SimError",
    "UnhandledFailureError",
    "UnhandledFailureWarning",
    "tick_time",
    "Event",
    "EventAlreadyTriggered",
    "ScheduledCallback",
    "batch_dispatch",
    "Process",
    "Timeout",
    "Interrupt",
]
