"""A small discrete-event simulation kernel.

Provides the event loop, one-shot events, timeouts, and generator-based
processes that the storage/container/workload substrates are built on.
The design follows the classic event-heap pattern (cancellable scheduled
callbacks, deterministic FIFO tie-breaking at equal timestamps) so that
every experiment is bit-reproducible for a given seed.
"""

from repro.simkernel.sim import Simulation, SimError
from repro.simkernel.events import Event, EventAlreadyTriggered, ScheduledCallback
from repro.simkernel.process import Process, Timeout, Interrupt

__all__ = [
    "Simulation",
    "SimError",
    "Event",
    "EventAlreadyTriggered",
    "ScheduledCallback",
    "Process",
    "Timeout",
    "Interrupt",
]
