"""One-shot events, cancellable scheduled callbacks, and the batchable
handler protocol used by epoch-grouped dispatch."""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event", "EventAlreadyTriggered", "ScheduledCallback", "batch_dispatch"]


def batch_dispatch(scalar_handler: Callable, batch_handler: Callable) -> Callable:
    """Register ``batch_handler`` as the epoch-batch form of a method.

    Under ``dispatch="batched"`` the event loop groups *consecutive*
    ready entries whose callbacks are bound methods of the same
    underlying function on the same receiver, and calls
    ``batch_handler(receiver, entries)`` once instead of N scalar
    callbacks (``entries`` are the grouped :class:`ScheduledCallback`
    objects; each entry's ``args`` carries the scalar call's arguments).

    The contract: the batch form must be observationally identical to
    running the scalar handler once per entry — same state transitions,
    same scheduled follow-ups, same float arithmetic where results feed
    recorded fingerprints.  Grouping never spans a differently-bound
    entry, so interleaved callbacks observe exactly the intermediate
    state scalar dispatch would have produced.

    Both arguments are plain functions (apply to the class attribute,
    not a bound method).  Returns ``scalar_handler`` so the call can be
    used as a post-class-body registration statement.
    """
    scalar_handler._batch_dispatch = batch_handler
    return scalar_handler


class EventAlreadyTriggered(RuntimeError):
    """Raised when succeeding or failing an event twice."""


class ScheduledCallback:
    """A heap entry: callback at a simulated time, cancellable in O(1).

    Cancellation marks the entry; the event loop skips cancelled entries
    when they surface, avoiding O(n) heap surgery.  The owning simulation
    keeps an O(1) live-entry counter, so cancellation notifies it exactly
    once — double cancels and cancels after execution are no-ops.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "executed", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: "Simulation | None" = None,  # noqa: F821 - circular hint
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel(self)

    def __lt__(self, other: "ScheduledCallback") -> bool:
        # FIFO within identical timestamps keeps runs deterministic.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledCallback t={self.time:.6f}{state} {self.callback!r}>"


class Event:
    """A one-shot event that processes can wait on.

    An event is *triggered* exactly once via :meth:`succeed` (or
    :meth:`fail` with an exception); callbacks registered before the
    trigger run at trigger time, callbacks registered after run
    immediately.

    Failures must be *retrieved* — by a callback registered before or
    after the trigger, or by reading :attr:`exception` — otherwise the
    simulation reports them when its queue drains (mirroring asyncio's
    "exception was never retrieved").

    Events created by :meth:`Simulation.timeout` carry the pending
    trigger's scheduled-callback handle and can be :meth:`cancel`-led.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "value", "_exception", "_handle", "_retrieved")

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821 - circular hint
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self.value: Any = None
        self._exception: BaseException | None = None
        #: Pending trigger handle (set by Simulation.timeout) — lets the
        #: event be cancelled in O(1) before it fires.
        self._handle: ScheduledCallback | None = None
        self._retrieved = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def exception(self) -> BaseException | None:
        """The failure exception (None if pending or succeeded).

        Reading it counts as retrieving the failure: the caller has seen
        the exception, so drain-time unhandled-failure detection skips
        this event.
        """
        self._retrieved = True
        return self._exception

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` dropped the pending trigger."""
        return self._handle is not None and self._handle.cancelled

    def cancel(self) -> None:
        """Drop the pending scheduled trigger (timeout events only).

        O(1) and idempotent; a no-op once the event has triggered.  The
        event then never triggers, so waiting callbacks never run.
        Events with no pending trigger handle cannot be cancelled.
        """
        if self._triggered:
            return
        if self._handle is None:
            raise RuntimeError(f"{self!r} has no pending trigger to cancel")
        self._handle.cancel()

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._triggered:
            self._retrieved = True
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} was already triggered")
        self._triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} was already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            self._retrieved = True
            for fn in callbacks:
                fn(self)
        else:
            # Nobody is listening: remember the failure so the loop can
            # report it at drain time unless someone retrieves it first.
            self.sim._note_unhandled_failure(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {state} at {id(self):#x}>"
