"""Generator-based simulation processes.

A process is a Python generator that yields the things it waits on:

* ``Timeout(delay)`` — resume after ``delay`` simulated seconds;
* an :class:`~repro.simkernel.events.Event` — resume when it triggers
  (the event's value is sent back into the generator; a failed event
  raises its exception inside the generator);
* another :class:`Process` — resume when that process terminates.

This mirrors the simpy programming model, which keeps workload code
(noise containers, analytics loops) readable as straight-line coroutines.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simkernel.events import Event

__all__ = ["Process", "Timeout", "Interrupt"]


class Timeout:
    """Yieldable: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay
        self.value = value


class Interrupt(Exception):
    """Raised inside a process when it is interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """Drives a generator through the event loop until it terminates.

    The process itself is waitable: other processes may yield it and will
    resume when it finishes; its :attr:`result` holds the generator's
    return value.
    """

    __slots__ = ("sim", "_gen", "_done_event", "result", "_waiting_handle")

    def __init__(self, sim, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.sim = sim
        self._gen = generator
        self._done_event = Event(sim)
        self.result: Any = None
        self._waiting_handle = None
        # Kick off on the next event-loop iteration at the current time so
        # process creation order does not interleave with running callbacks.
        sim.schedule(0.0, self._resume, None, None)

    # -- public API -------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return not self._done_event.triggered

    @property
    def done_event(self) -> Event:
        return self._done_event

    def add_callback(self, fn) -> None:
        """Waitable protocol: delegate to the completion event."""
        self._done_event.add_callback(fn)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a terminated process")
        if self._waiting_handle is not None:
            self._waiting_handle.cancel()
            self._waiting_handle = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- engine ------------------------------------------------------------

    def _resume(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if self._done_event.triggered:
            return
        try:
            if throw_exc is not None:
                target = self._gen.throw(throw_exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self._done_event.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interruption: treat as exit.
            self.result = None
            self._done_event.succeed(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        # Event first: I/O-bound processes mostly yield device events.
        if isinstance(target, Event):
            target.add_callback(self._on_event)
        elif isinstance(target, Timeout):
            self._waiting_handle = self.sim.schedule(
                target.delay, self._resume, target.value, None
            )
        elif isinstance(target, Process):
            target._done_event.add_callback(self._on_event)
        else:
            exc = TypeError(f"process yielded unsupported object {target!r}")
            self.sim.schedule(0.0, self._resume, None, exc)

    def _on_event(self, event: Event) -> None:
        self._waiting_handle = None
        if event.exception is not None:
            self.sim.schedule(0.0, self._resume, None, event.exception)
        else:
            self.sim.schedule(0.0, self._resume, event.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {state} {self._gen!r}>"
