"""The event loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.simkernel.events import Event, ScheduledCallback

__all__ = ["Simulation", "SimError"]


class SimError(RuntimeError):
    """Raised for simulation-kernel usage errors."""


class Simulation:
    """A discrete-event simulation: a clock plus a heap of callbacks.

    Time is a float in seconds.  ``schedule`` returns a cancellable handle.
    Generator-based processes are started with :meth:`process`; see
    :class:`repro.simkernel.process.Process`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[ScheduledCallback] = []
        self._seq = 0
        #: Live (scheduled, neither cancelled nor executed) entry count,
        #: maintained incrementally so ``pending_count`` is O(1).
        self._live = 0
        #: Total callbacks executed (cancelled entries excluded) — the
        #: denominator-free throughput figure the scenario benchmarks
        #: report as events/sec.
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimError(f"cannot schedule at {time} < now ({self._now})")
        entry = ScheduledCallback(time, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` seconds from now."""
        ev = self.event()
        self.schedule(delay, ev.succeed, value)
        return ev

    def process(self, generator: Generator) -> "Process":  # noqa: F821
        """Start a generator-based process; returns its Process handle."""
        from repro.simkernel.process import Process

        return Process(self, generator)

    # -- running -----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) scheduled callbacks.  O(1)."""
        return self._live

    @property
    def events_executed(self) -> int:
        """Total callbacks executed so far (cancelled entries excluded)."""
        return self._executed

    def peek(self) -> float:
        """Time of the next live callback, or ``inf`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    def step(self) -> bool:
        """Execute the next callback.  Returns False when nothing is left."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.executed = True
            self._live -= 1
            self._executed += 1
            entry.callback(*entry.args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or the clock would pass ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), mirroring the
        usual DES convention.

        The loop pops each live entry exactly once: cancelled entries are
        discarded as they surface and the head entry is inspected in place
        before popping, rather than the peek-then-step double heap walk.
        """
        if until is not None and until < self._now:
            raise SimError(f"until={until} is in the past (now={self._now})")
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and entry.time > until:
                break
            heapq.heappop(heap)
            self._now = entry.time
            entry.executed = True
            self._live -= 1
            self._executed += 1
            entry.callback(*entry.args)
        if until is not None:
            self._now = max(self._now, until)
        return self._now
