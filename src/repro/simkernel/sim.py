"""The event loop: epoch-batched execution over a calendar queue.

Two interchangeable kernels drive the simulation:

* ``kernel="calendar"`` (the default) — a bucketed future-event list
  (Brown's calendar queue: O(1) amortized insert/extract with automatic
  bucket-width resizing and a binary-heap fallback for pathological time
  distributions) drained **one epoch at a time**: every live entry
  sharing the minimum timestamp is pulled into a flat batch and
  dispatched in one pass.  Same-timestamp traffic — coalesced blkio
  reschedule flushes, process resumes, sampler ticks, retry timers —
  never touches the queue at all: a callback scheduling at the current
  instant appends straight to the draining batch.
* ``kernel="heap"`` — the classic binary-heap loop, kept verbatim as the
  parity oracle.  Both kernels execute live entries in exactly
  ``(time, seq)`` order, so same-seed runs are bit-identical across
  kernels (pinned by the recorded fingerprints in ``tests/test_engine.py``
  and the randomized cross-kernel property tests).

Both kernels cancel lazily (O(1) ``ScheduledCallback.cancel``) and
**compact** when cancelled entries pile up, so schedule-and-cancel churn
(retry-heavy fault campaigns) cannot grow the queue unboundedly.

Failures that nothing observes are detected at drain time: an
:meth:`~repro.simkernel.events.Event.fail` whose exception is never
retrieved warns (or raises, per ``on_unhandled_failure``) when the loop
drains — mirroring asyncio's "exception was never retrieved".
"""

from __future__ import annotations

import heapq
import warnings
from typing import Any, Callable, Generator

from repro.obs import OBS
from repro.simkernel.events import Event, ScheduledCallback

__all__ = [
    "Simulation",
    "SimError",
    "UnhandledFailureError",
    "UnhandledFailureWarning",
    "tick_time",
]


class SimError(RuntimeError):
    """Raised for simulation-kernel usage errors."""


class UnhandledFailureError(SimError):
    """Raised at drain time when event failures were never retrieved."""


class UnhandledFailureWarning(RuntimeWarning):
    """Warned at drain time when event failures were never retrieved."""


def tick_time(start: float, n: int, period: float) -> float:
    """Absolute time of the ``n``-th tick of a periodic series.

    ``start + n * period`` evaluated fresh per tick (two roundings total)
    instead of ``n`` accumulated additions, so tick ``n`` of a
    non-representable period (0.1, 1/3, ...) lands exactly on
    ``start + n * period`` rather than at ``t ± n·ulp`` — float drift
    that would silently defeat same-timestamp coalescing of ticks meant
    to coincide.  Monotone in ``n`` for ``period >= 0``.
    """
    return start + n * period


_KERNELS = ("calendar", "heap")
_DISPATCH_MODES = ("batched", "scalar")
_FAILURE_MODES = ("warn", "raise", "ignore")

#: Compaction trigger: lazily-cancelled entries must number at least this
#: many *and* be at least half the queue before a rebuild pays off.
_COMPACT_MIN_CANCELLED = 64


class _CalendarQueue:
    """A calendar queue: bucketed future-event list with O(1) ops.

    Entries hash into ``nbuckets`` buckets by ``int(time / width)``; the
    extract cursor walks bucket-by-bucket through the current "year"
    (one pass over all buckets covers ``nbuckets * width`` of simulated
    time).  Buckets are FIFO lists, and equal-time entries always land in
    the same bucket in seq order, so draining one timestamp preserves the
    deterministic ``(time, seq)`` execution order without sorting.

    The queue is **regime-adaptive** in three modes:

    * ``heap`` (small queues): below ``GROW_AT`` entries, bucket-scan
      overhead exceeds the C-implemented binary heap's O(log n), so the
      queue runs on ``heapq``.  Most workloads in this repo keep only a
      handful of pending timers and live their whole life here.
    * ``buckets`` (large queues): at ``GROW_AT`` entries the queue
      migrates into the calendar proper — O(1) amortized insert/extract
      — and resizes itself: doubling when overfull, shrinking when
      sparse, re-deriving the bucket width from the live time span.  It
      drops back to ``heap`` mode when the population falls to
      ``SHRINK_AT`` (hysteresis prevents thrash at the boundary).
    * ``fallback`` (pathological): when the time distribution defeats
      bucketing (repeated whole-year scans that find nothing, e.g.
      exponentially growing gaps), the queue switches to the heap
      permanently.

    All three modes extract in identical ``(time, seq)`` order.
    ``discards`` counts cancelled entries physically dropped during
    scans/rebuilds/migrations, so the owning simulation can track
    outstanding lazy cancellations exactly.
    """

    __slots__ = (
        "buckets",
        "nbuckets",
        "mask",
        "width",
        "inv_width",
        "qsize",
        "cur_bn",
        "discards",
        "resizes",
        "direct_searches",
        "migrations",
        "fallback",
        "use_heap",
        "heap",
        "_consec_direct",
    )

    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 16
    #: Consecutive direct (whole-queue) searches before giving up on
    #: bucketing and switching to the heap permanently.
    FALLBACK_AFTER = 8
    #: Entry count at which a heap-mode queue migrates into buckets.
    GROW_AT = 64
    #: Entry count at which a bucket-mode queue drops back to the heap.
    SHRINK_AT = 16

    def __init__(self) -> None:
        self.nbuckets = self.MIN_BUCKETS
        self.mask = self.nbuckets - 1
        self.width = 1.0
        self.inv_width = 1.0
        self.buckets: list[list[ScheduledCallback]] = [[] for _ in range(self.nbuckets)]
        self.qsize = 0
        self.cur_bn = 0  # absolute bucket number of the extract cursor
        self.discards = 0
        self.resizes = 0
        self.direct_searches = 0
        self.migrations = 0
        self.fallback = False
        self.use_heap = True
        self.heap: list[ScheduledCallback] = []
        self._consec_direct = 0

    # -- mode migration --------------------------------------------------

    def _to_buckets(self) -> None:
        """Migrate heap → buckets (queue grew past GROW_AT)."""
        entries = [e for e in self.heap if not e.cancelled]
        self.discards += len(self.heap) - len(entries)
        self.heap = []
        self.use_heap = False
        self.migrations += 1
        if not entries:
            self.qsize = 0
            return
        # Bucket order within a timestamp must be seq order; the raw heap
        # list is only heap-ordered, so sort before distributing.
        entries.sort()
        self._rebuild(entries, entries[0].time)

    def _to_heap(self) -> None:
        """Migrate buckets → heap (queue shrank to SHRINK_AT)."""
        entries = [e for b in self.buckets for e in b if not e.cancelled]
        self.discards += self.qsize - len(entries)
        self.buckets = [[] for _ in range(self.nbuckets)]
        heapq.heapify(entries)
        self.heap = entries
        self.qsize = len(entries)
        self.use_heap = True
        self.migrations += 1

    # -- insert ----------------------------------------------------------

    def insert(self, entry: ScheduledCallback) -> None:
        if self.use_heap:
            heapq.heappush(self.heap, entry)
            self.qsize += 1
            if not self.fallback and self.qsize >= self.GROW_AT:
                self._to_buckets()
            return
        bn = int(entry.time * self.inv_width)
        if self.qsize == 0 or bn < self.cur_bn:
            # Snap the cursor back to the new entry: on an empty queue a
            # long idle gap then costs nothing to cross, and an entry
            # earlier than the cursor would otherwise be skipped until a
            # direct search stumbled on it.
            self.cur_bn = bn
        self.buckets[bn & self.mask].append(entry)
        self.qsize += 1
        if self.qsize > 2 * self.nbuckets and self.nbuckets < self.MAX_BUCKETS:
            self._resize()

    # -- extract ---------------------------------------------------------

    def peek_time(self) -> float | None:
        """Earliest live entry time, or None when empty.  Prunes lazily."""
        return self._locate_min()

    def extract_batch(self, limit: float | None) -> tuple[float, list[ScheduledCallback]] | None:
        """Remove and return ``(t, entries)`` for the earliest timestamp.

        Returns None when empty or when the earliest live entry lies past
        ``limit`` (entries are left queued).  The returned batch holds
        every live entry at ``t`` in seq order.  Locating the minimum and
        splitting its bucket are fused into one walk from the cursor.
        """
        if self.use_heap:
            heap = self.heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                self.qsize -= 1
                self.discards += 1
            if not heap:
                return None
            t = heap[0].time
            if limit is not None and t > limit:
                return None
            batch: list[ScheduledCallback] = []
            while heap and heap[0].time == t:
                e = heapq.heappop(heap)
                self.qsize -= 1
                if e.cancelled:
                    self.discards += 1
                else:
                    batch.append(e)
            return t, batch
        if self.qsize == 0:
            return None
        buckets = self.buckets
        mask = self.mask
        inv_width = self.inv_width
        bn = self.cur_bn
        scanned = 0
        while True:
            bucket = buckets[bn & mask]
            if bucket:
                if len(bucket) == 1:
                    # Singleton bucket — the common case on sparse
                    # calendars: no split pass, no membership ambiguity.
                    e = bucket[0]
                    if e.cancelled:
                        buckets[bn & mask] = []
                        self.qsize -= 1
                        self.discards += 1
                        if self.qsize == 0:
                            self.cur_bn = bn
                            return None
                    elif int(e.time * inv_width) == bn:
                        t = e.time
                        self.cur_bn = bn
                        self._consec_direct = 0
                        if limit is not None and t > limit:
                            return None
                        buckets[bn & mask] = []
                        self.qsize -= 1
                        if self.qsize <= self.SHRINK_AT:
                            self._to_heap()
                        elif (
                            self.qsize < (self.nbuckets >> 2)
                            and self.nbuckets > self.MIN_BUCKETS
                        ):
                            self._resize()
                        return t, bucket
                    bn += 1
                    scanned += 1
                    if scanned > self.nbuckets:
                        t = self._direct_search()
                        if t is None or (limit is not None and t > limit):
                            return None
                        return self.extract_batch(limit)
                    continue
                best: float | None = None
                dirty = False
                for e in bucket:
                    if e.cancelled:
                        dirty = True
                    elif int(e.time * inv_width) == bn and (best is None or e.time < best):
                        best = e.time
                if best is not None:
                    self.cur_bn = bn
                    self._consec_direct = 0
                    if limit is not None and best > limit:
                        if dirty:
                            self._prune_bucket(bn & mask)
                        return None
                    # Split the winning bucket: batch = live entries at
                    # ``best`` (bucket order == seq order), keep the rest.
                    batch = []
                    kept: list[ScheduledCallback] = []
                    for e in bucket:
                        if e.cancelled:
                            self.discards += 1
                        elif e.time == best:
                            batch.append(e)
                        else:
                            kept.append(e)
                    buckets[bn & mask] = kept
                    self.qsize -= len(bucket) - len(kept)
                    if self.qsize <= self.SHRINK_AT:
                        self._to_heap()
                    elif (
                        self.qsize < (self.nbuckets >> 2)
                        and self.nbuckets > self.MIN_BUCKETS
                    ):
                        self._resize()
                    return best, batch
                if dirty and self._prune_bucket(bn & mask) == 0:
                    self.cur_bn = bn
                    return None
            bn += 1
            scanned += 1
            if scanned > self.nbuckets:
                t = self._direct_search()
                if t is None or (limit is not None and t > limit):
                    return None
                return self.extract_batch(limit)

    def _prune_bucket(self, idx: int) -> int:
        """Drop a bucket's cancelled entries; returns the remaining qsize."""
        bucket = self.buckets[idx]
        kept = [e for e in bucket if not e.cancelled]
        removed = len(bucket) - len(kept)
        self.buckets[idx] = kept
        self.qsize -= removed
        self.discards += removed
        return self.qsize

    def _locate_min(self) -> float | None:
        """Earliest live time; positions the cursor at its bucket."""
        if self.use_heap:
            heap = self.heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                self.qsize -= 1
                self.discards += 1
            return heap[0].time if heap else None
        if self.qsize == 0:
            return None
        buckets = self.buckets
        mask = self.mask
        inv_width = self.inv_width
        bn = self.cur_bn
        scanned = 0
        while True:
            bucket = buckets[bn & mask]
            if bucket:
                best: float | None = None
                dirty = False
                for e in bucket:
                    if e.cancelled:
                        dirty = True
                    elif int(e.time * inv_width) == bn and (best is None or e.time < best):
                        best = e.time
                if dirty:
                    kept = [e for e in bucket if not e.cancelled]
                    removed = len(bucket) - len(kept)
                    buckets[bn & mask] = kept
                    self.qsize -= removed
                    self.discards += removed
                    if self.qsize == 0:
                        self.cur_bn = bn
                        return None
                if best is not None:
                    self.cur_bn = bn
                    self._consec_direct = 0
                    return best
            bn += 1
            scanned += 1
            if scanned > self.nbuckets:
                # A whole year of buckets held nothing current: the next
                # event is far away or the width is wrong.  Search
                # directly and re-derive the calendar around what's live.
                return self._direct_search()

    def _direct_search(self) -> float | None:
        self.direct_searches += 1
        self._consec_direct += 1
        entries = [e for b in self.buckets for e in b if not e.cancelled]
        self.discards += self.qsize - len(entries)
        if not entries:
            self.qsize = 0
            return None
        if self._consec_direct >= self.FALLBACK_AFTER:
            # Bucketing keeps losing: this distribution is pathological
            # for a calendar (e.g. exponentially growing gaps).  Run the
            # rest of the simulation on a plain binary heap.
            self.fallback = True
            self.use_heap = True
            self.buckets = [[] for _ in range(self.nbuckets)]
            heapq.heapify(entries)
            self.heap = entries
            self.qsize = len(entries)
            return self.heap[0].time
        t_min = min(e.time for e in entries)
        self._rebuild(entries, t_min)
        return t_min

    # -- maintenance -----------------------------------------------------

    def compact(self) -> None:
        """Physically drop cancelled entries (cancel-churn pressure valve)."""
        if self.use_heap:
            live = [e for e in self.heap if not e.cancelled]
            self.discards += len(self.heap) - len(live)
            heapq.heapify(live)
            self.heap = live
            self.qsize = len(live)
            return
        entries = [e for b in self.buckets for e in b if not e.cancelled]
        self.discards += self.qsize - len(entries)
        if not entries:
            self.buckets = [[] for _ in range(self.nbuckets)]
            self.qsize = 0
            return
        self._rebuild(entries, min(e.time for e in entries))

    def _resize(self) -> None:
        entries = [e for b in self.buckets for e in b if not e.cancelled]
        self.discards += self.qsize - len(entries)
        if not entries:
            self.qsize = 0
            return
        self._rebuild(entries, min(e.time for e in entries))

    def _rebuild(self, entries: list[ScheduledCallback], t_min: float) -> None:
        """Re-derive bucket count/width from the live set and redistribute.

        ``entries`` is in bucket-iteration order, which keeps equal-time
        entries (always co-bucketed) in their original FIFO/seq order.
        """
        n = len(entries)
        target = self.MIN_BUCKETS
        while target < n and target < self.MAX_BUCKETS:
            target <<= 1
        t_max = max(e.time for e in entries)
        span = t_max - t_min
        if span > 0.0 and n > 1:
            # ~4 events per bucket-width: adjacent events land in the
            # same or adjacent buckets, a year spans the live horizon.
            width = 4.0 * span / n
        else:
            width = self.width  # single instant: any width works
        if not width > 0.0:  # guards subnormal underflow to 0.0
            width = 1.0
        self.nbuckets = target
        self.mask = target - 1
        self.width = width
        self.inv_width = 1.0 / width
        buckets: list[list[ScheduledCallback]] = [[] for _ in range(target)]
        inv_width = self.inv_width
        for e in entries:
            buckets[int(e.time * inv_width) & self.mask].append(e)
        self.buckets = buckets
        self.qsize = n
        self.cur_bn = int(t_min * inv_width)
        self.resizes += 1

    def stats(self) -> dict:
        return {
            "qsize": self.qsize,
            "nbuckets": self.nbuckets,
            "width": self.width,
            "resizes": self.resizes,
            "direct_searches": self.direct_searches,
            "migrations": self.migrations,
            "mode": "fallback" if self.fallback else ("heap" if self.use_heap else "buckets"),
            "fallback": self.fallback,
        }


class Simulation:
    """A discrete-event simulation: a clock plus a queue of callbacks.

    Time is a float in seconds.  ``schedule`` returns a cancellable
    handle.  Generator-based processes are started with :meth:`process`;
    see :class:`repro.simkernel.process.Process`.

    ``kernel`` selects the event-queue implementation: ``"calendar"``
    (epoch-batched calendar queue, the default) or ``"heap"`` (the
    classic binary-heap loop, kept as the parity oracle).  Both execute
    callbacks in identical ``(time, seq)`` order.

    ``dispatch`` selects how a drained epoch reaches its handlers:
    ``"batched"`` (the default) groups consecutive ready entries bound
    to the same batchable handler (see
    :func:`repro.simkernel.events.batch_dispatch`) and hands the whole
    run to the handler's batch form in one call; ``"scalar"`` executes
    every entry through its own callback — the parity oracle.  Batch
    handlers are required to be observationally identical to their
    scalar form (grouping only spans *consecutive* entries, so any
    interleaved callback observes exactly the state scalar dispatch
    would have produced), which keeps traces, ``events_executed`` and
    recorded fingerprints bit-identical across dispatch modes.

    ``on_unhandled_failure`` controls what happens when the loop drains
    with event failures nothing ever retrieved: ``"warn"`` (default),
    ``"raise"``, or ``"ignore"``.
    """

    def __init__(
        self,
        kernel: str = "calendar",
        *,
        dispatch: str = "batched",
        on_unhandled_failure: str = "warn",
    ) -> None:
        if kernel not in _KERNELS:
            raise SimError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
        if dispatch not in _DISPATCH_MODES:
            raise SimError(
                f"unknown dispatch {dispatch!r}; expected one of {_DISPATCH_MODES}"
            )
        if on_unhandled_failure not in _FAILURE_MODES:
            raise SimError(
                f"on_unhandled_failure must be one of {_FAILURE_MODES}, "
                f"got {on_unhandled_failure!r}"
            )
        self.kernel = kernel
        self.dispatch = dispatch
        #: Current simulated time (seconds).  A plain attribute, not a
        #: property: it is read on every schedule/dispatch and the
        #: descriptor overhead is measurable.  Treat as read-only.
        self.now = 0.0
        self._seq = 0
        #: Live (scheduled, neither cancelled nor executed) entry count,
        #: maintained incrementally so ``pending_count`` is O(1).
        self._live = 0
        #: Total callbacks executed (cancelled entries excluded) — the
        #: denominator-free throughput figure the scenario benchmarks
        #: report as events/sec.
        self._executed = 0
        #: Lazy-cancellation accounting: ``_cancels`` counts cancel()
        #: notifications, ``_discards`` counts cancelled entries
        #: physically dropped by this class (the calendar queue keeps its
        #: own ``discards``); the difference is what still occupies the
        #: queue and drives compaction.
        self._cancels = 0
        self._discards = 0
        self._compactions = 0
        # Epoch-batching state (calendar kernel only): ``_ready`` holds
        # the current epoch's batch, ``_ready_idx`` the next entry to
        # dispatch, ``_dispatching`` is True while a callback runs so
        # schedule-at-now can append straight to the batch.
        self._heap: list[ScheduledCallback] = []
        self._cal = _CalendarQueue() if kernel == "calendar" else None
        self._ready: list[ScheduledCallback] = []
        self._ready_idx = 0
        self._dispatching = False
        self._epochs = 0
        self._batched = 0
        self._max_batch = 0
        # Grouped-dispatch accounting (dispatch="batched"): calls to
        # batch handlers and entries delivered through them.
        self._group_calls = 0
        self._grouped_events = 0
        # peek() skip cache: entries in ``_ready[_ready_idx:_peek_skip]``
        # were all observed cancelled by an earlier peek (cancellation is
        # one-way, so the observation stays valid); ``_peek_scans``
        # counts entries examined — pinned by the peek cost tests.
        self._peek_skip = 0
        self._peek_scans = 0
        # Unhandled-failure detection (see events.Event.fail).
        self._failure_mode = on_unhandled_failure
        self._unhandled: list[Event] = []

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        # schedule_at's body, inlined: this is the hottest kernel entry
        # point (every process resume and device flush lands here).
        time = self.now + delay
        entry = ScheduledCallback(time, self._seq, callback, args, self)
        self._seq += 1
        self._live += 1
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, entry)
        elif self._dispatching and time == self.now:
            self._ready.append(entry)
        else:
            cal.insert(entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule at {time} < now ({self.now})")
        entry = ScheduledCallback(time, self._seq, callback, args, self)
        self._seq += 1
        self._live += 1
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, entry)
        elif self._dispatching and time == self.now:
            # Epoch fast path: a same-timestamp schedule joins the batch
            # being drained (its seq exceeds everything already there, so
            # append order IS execution order) — no queue traffic at all.
            self._ready.append(entry)
        else:
            cal.insert(entry)
        return entry

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """A cancellable event that succeeds ``delay`` seconds from now.

        ``Event.cancel()`` drops the pending trigger in O(1), so retry
        deadlines and watchdogs that turn out unneeded do not linger as
        live entries in the queue.
        """
        ev = self.event()
        ev._handle = self.schedule(delay, ev.succeed, value)
        return ev

    def process(self, generator: Generator) -> "Process":  # noqa: F821
        """Start a generator-based process; returns its Process handle."""
        from repro.simkernel.process import Process

        return Process(self, generator)

    # -- lazy-cancellation bookkeeping ------------------------------------

    def _note_cancel(self, entry: ScheduledCallback) -> None:
        """Called once per ScheduledCallback.cancel(); may compact."""
        self._live -= 1
        self._cancels += 1
        lazy = self._cancels - self._discards
        cal = self._cal
        if cal is not None:
            lazy -= cal.discards
        if lazy < _COMPACT_MIN_CANCELLED:
            return
        if cal is None:
            # The heap kernel's batched drain also stages entries in
            # ``_ready`` (empty under scalar dispatch).
            qsize = len(self._heap) + len(self._ready) - self._ready_idx
        else:
            qsize = cal.qsize + len(self._ready) - self._ready_idx
        if 2 * lazy >= qsize:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queue without its cancelled entries."""
        self._compactions += 1
        cal = self._cal
        if cal is None:
            heap = self._heap
            live = [e for e in heap if not e.cancelled]
            self._discards += len(heap) - len(live)
            heapq.heapify(live)
            self._heap = live
        else:
            # The in-flight epoch batch is left alone (bounded by one
            # epoch's size; its cancelled entries fall out on dispatch).
            cal.compact()

    # -- unhandled-failure detection --------------------------------------

    def _note_unhandled_failure(self, ev: Event) -> None:
        """An Event.fail() ran with no callbacks registered."""
        if self._failure_mode != "ignore":
            self._unhandled.append(ev)

    def check_unhandled_failures(self) -> None:
        """Warn or raise for failed events whose exception nobody took.

        Runs automatically when :meth:`run` drains the queue; callers
        that stop early (``until=``) can invoke it explicitly.
        """
        if not self._unhandled:
            return
        pending = [ev for ev in self._unhandled if not ev._retrieved]
        self._unhandled.clear()
        if not pending or self._failure_mode == "ignore":
            return
        first = pending[0]._exception
        msg = (
            f"{len(pending)} event failure(s) were never retrieved "
            f"(first: {first!r}); yield the event, register a callback, "
            f"or read .exception"
        )
        if self._failure_mode == "raise":
            raise UnhandledFailureError(msg) from first
        warnings.warn(msg, UnhandledFailureWarning, stacklevel=2)

    # -- introspection ----------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) scheduled callbacks.  O(1)."""
        return self._live

    @property
    def events_executed(self) -> int:
        """Total callbacks executed so far (cancelled entries excluded)."""
        return self._executed

    @property
    def epochs_executed(self) -> int:
        """Timestamp batches dispatched so far (calendar kernel only)."""
        return self._epochs

    def kernel_stats(self) -> dict:
        """Counters for observability and the kernel property tests."""
        cal = self._cal
        lazy = self._cancels - self._discards - (cal.discards if cal is not None else 0)
        stats = {
            "kernel": self.kernel,
            "dispatch": self.dispatch,
            "executed": self._executed,
            "live": self._live,
            "epochs": self._epochs,
            "batched_events": self._batched,
            "max_batch": self._max_batch,
            "group_calls": self._group_calls,
            "grouped_events": self._grouped_events,
            "cancels": self._cancels,
            "lazy_cancelled": lazy,
            "compactions": self._compactions,
        }
        if cal is not None:
            stats["calendar"] = cal.stats()
        else:
            stats["heap_len"] = len(self._heap)
        return stats

    def _queue_len(self) -> int:
        """Entries physically stored (live + lazily cancelled) — tests."""
        if self._cal is None:
            return len(self._heap) + len(self._ready) - self._ready_idx
        return self._cal.qsize + len(self._ready) - self._ready_idx

    def peek(self) -> float:
        """Time of the next live callback, or ``inf`` when idle.

        The in-flight epoch batch is scanned from ``_peek_skip`` rather
        than ``_ready_idx``: every entry below the skip mark was already
        observed cancelled by an earlier peek, and cancellation is
        one-way, so repeated peeks during a cancel-heavy epoch examine
        each dead entry once instead of once per call.
        """
        ready = self._ready
        i = self._peek_skip
        idx = self._ready_idx
        if i < idx:
            i = idx
        n = len(ready)
        scans = 0
        while i < n:
            scans += 1
            e = ready[i]
            if not e.cancelled:
                self._peek_skip = i
                self._peek_scans += scans
                return e.time
            i += 1
        self._peek_skip = i
        self._peek_scans += scans
        cal = self._cal
        if cal is None:
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                self._discards += 1
            return heap[0].time if heap else float("inf")
        t = cal.peek_time()
        return t if t is not None else float("inf")

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next callback.  Returns False when nothing is left."""
        if self._cal is None:
            while self._heap:
                entry = heapq.heappop(self._heap)
                if entry.cancelled:
                    self._discards += 1
                    continue
                self.now = entry.time
                entry.executed = True
                self._live -= 1
                self._executed += 1
                entry.callback(*entry.args)
                return True
            return False
        ready = self._ready
        while True:
            idx = self._ready_idx
            if idx < len(ready):
                entry = ready[idx]
                self._ready_idx = idx + 1
                if entry.cancelled:
                    self._discards += 1
                    continue
                entry.executed = True
                self._live -= 1
                self._executed += 1
                self._dispatching = True
                try:
                    entry.callback(*entry.args)
                finally:
                    self._dispatching = False
                return True
            if ready:
                del ready[:]
                self._ready_idx = 0
                self._peek_skip = 0
            batch = self._cal.extract_batch(None)
            if batch is None:
                return False
            self._begin_epoch(*batch)

    def _begin_epoch(self, t: float, entries: list[ScheduledCallback]) -> None:
        self.now = t
        self._ready.extend(entries)
        self._epochs += 1
        n = len(entries)
        self._batched += n
        if n > self._max_batch:
            self._max_batch = n

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), mirroring the
        usual DES convention.

        On a full drain, unretrieved event failures are reported per the
        ``on_unhandled_failure`` mode (see :meth:`check_unhandled_failures`).
        """
        if until is not None and until < self.now:
            raise SimError(f"until={until} is in the past (now={self.now})")
        if self._cal is None:
            self._run_heap(until)
        else:
            self._run_calendar(until)
        if until is not None and until > self.now:
            self.now = until
        if self._live == 0:
            self.check_unhandled_failures()
        if OBS.enabled:
            self._publish_obs()
        return self.now

    def _run_heap(self, until: float | None) -> None:
        """The classic fused heap walk — the parity oracle.

        The loop pops each live entry exactly once: cancelled entries are
        discarded as they surface and the head entry is inspected in place
        before popping, rather than the peek-then-step double heap walk.
        Under batched dispatch the heap kernel extracts whole epochs so
        grouped handlers work identically on both kernels.
        """
        if self.dispatch == "batched":
            self._run_heap_batched(until)
            return
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry.cancelled:
                heapq.heappop(heap)
                self._discards += 1
                continue
            if until is not None and entry.time > until:
                break
            heapq.heappop(heap)
            self.now = entry.time
            entry.executed = True
            self._live -= 1
            self._executed += 1
            entry.callback(*entry.args)

    def _run_heap_batched(self, until: float | None) -> None:
        """Heap kernel with epoch extraction + grouped dispatch.

        Same-timestamp entries are popped into ``_ready`` and dispatched
        through the shared grouped inner loop.  Callbacks scheduling at
        the current instant still push to the heap (the calendar's
        append-to-batch fast path does not apply), so such entries are
        re-extracted as follow-up epochs at the same timestamp — group
        boundaries may differ from the calendar kernel's, but grouping
        is semantics-preserving regardless of where runs split.
        """
        heap = self._heap
        ready = self._ready
        self._dispatching = True
        try:
            while True:
                idx = self._ready_idx
                if idx >= len(ready):
                    if ready:
                        del ready[:]
                        self._ready_idx = idx = 0
                        self._peek_skip = 0
                    while heap and heap[0].cancelled:
                        heapq.heappop(heap)
                        self._discards += 1
                    if not heap:
                        return
                    t = heap[0].time
                    if until is not None and t > until:
                        return
                    ready.append(heapq.heappop(heap))
                    while heap and heap[0].time == t:
                        e = heapq.heappop(heap)
                        if e.cancelled:
                            self._discards += 1
                        else:
                            ready.append(e)
                    self.now = t
                    self._epochs += 1
                    n = len(ready)
                    self._batched += n
                    if n > self._max_batch:
                        self._max_batch = n
                while idx < len(ready):
                    entry = ready[idx]
                    idx += 1
                    self._ready_idx = idx
                    if entry.cancelled:
                        self._discards += 1
                        continue
                    cb = entry.callback
                    f = getattr(cb, "__func__", None)
                    if f is not None:
                        batch_fn = getattr(f, "_batch_dispatch", None)
                        if batch_fn is not None:
                            idx = self._dispatch_group(
                                batch_fn, f, cb.__self__, entry, ready, idx
                            )
                            continue
                    entry.executed = True
                    self._live -= 1
                    self._executed += 1
                    cb(*entry.args)
        finally:
            self._dispatching = False

    def _dispatch_group(
        self,
        batch_fn: Callable,
        func: Callable,
        owner: Any,
        first: ScheduledCallback,
        ready: list[ScheduledCallback],
        idx: int,
    ) -> int:
        """Collect the consecutive run of entries bound to ``func`` on
        ``owner`` and deliver it through ``batch_fn`` in one call.

        Only *consecutive* entries group: the first entry with a
        different handler ends the run, so any interleaved callback
        observes exactly the intermediate state scalar dispatch would
        have produced.  Cancelled entries inside the run are consumed as
        discards (they are no-ops in scalar order too).  Every grouped
        entry counts toward ``events_executed`` — parity with scalar
        dispatch is exact.  Returns the new ready index.
        """
        run = [first]
        n = len(ready)
        discards = 0
        while idx < n:
            e = ready[idx]
            if e.cancelled:
                idx += 1
                discards += 1
                continue
            cb = e.callback
            if getattr(cb, "__func__", None) is func and cb.__self__ is owner:
                run.append(e)
                idx += 1
                continue
            break
        self._ready_idx = idx
        if discards:
            self._discards += discards
        k = len(run)
        for e in run:
            e.executed = True
        self._live -= k
        self._executed += k
        self._group_calls += 1
        self._grouped_events += k
        batch_fn(owner, run)
        return idx

    def _run_calendar(self, until: float | None) -> None:
        """Epoch-batched drain: one queue extraction per timestamp.

        All live entries at the minimum time are pulled into ``_ready``
        and dispatched in seq order; callbacks scheduling at the current
        instant append to the batch directly (see :meth:`schedule_at`),
        so same-timestamp cascades cost list appends, not queue churn.
        """
        cal = self._cal
        ready = self._ready
        grouped = self.dispatch == "batched"
        self._dispatching = True
        try:
            while True:
                idx = self._ready_idx
                n = len(ready)
                if idx >= n:
                    if n:
                        del ready[:]
                        self._ready_idx = idx = 0
                        self._peek_skip = 0
                    if cal.use_heap:
                        # Heap-regime epoch extraction, inlined: the small
                        # queues that dominate repo workloads never leave
                        # this mode, and the per-epoch method call, batch
                        # list, and tuple of extract_batch() are the whole
                        # gap to the fused heap oracle.
                        heap = cal.heap
                        while heap and heap[0].cancelled:
                            heapq.heappop(heap)
                            cal.qsize -= 1
                            cal.discards += 1
                        if not heap:
                            return
                        t = heap[0].time
                        if until is not None and t > until:
                            return
                        ready.append(heapq.heappop(heap))
                        cal.qsize -= 1
                        while heap and heap[0].time == t:
                            e = heapq.heappop(heap)
                            cal.qsize -= 1
                            if e.cancelled:
                                cal.discards += 1
                            else:
                                ready.append(e)
                        n = len(ready)
                    else:
                        batch = cal.extract_batch(until)
                        if batch is None:
                            return
                        t, entries = batch
                        ready.extend(entries)
                        n = len(entries)
                    # _begin_epoch, inlined (one epoch per iteration).
                    self.now = t
                    self._epochs += 1
                    self._batched += n
                    if n > self._max_batch:
                        self._max_batch = n
                while idx < len(ready):
                    entry = ready[idx]
                    idx += 1
                    self._ready_idx = idx
                    if entry.cancelled:
                        self._discards += 1
                        continue
                    if grouped:
                        cb = entry.callback
                        f = getattr(cb, "__func__", None)
                        if f is not None:
                            batch_fn = getattr(f, "_batch_dispatch", None)
                            if batch_fn is not None:
                                idx = self._dispatch_group(
                                    batch_fn, f, cb.__self__, entry, ready, idx
                                )
                                continue
                    entry.executed = True
                    self._live -= 1
                    self._executed += 1
                    entry.callback(*entry.args)
        finally:
            self._dispatching = False

    def _publish_obs(self) -> None:
        """Snapshot kernel counters into the metrics registry (run exit)."""
        reg = OBS.registry
        kernel = self.kernel
        reg.gauge("kernel.events_executed").set(self._executed, kernel=kernel)
        reg.gauge("kernel.epochs").set(self._epochs, kernel=kernel)
        reg.gauge("kernel.max_batch").set(self._max_batch, kernel=kernel)
        reg.gauge("kernel.compactions").set(self._compactions, kernel=kernel)
        cal = self._cal
        if cal is not None:
            reg.gauge("kernel.buckets").set(cal.nbuckets, kernel=kernel)
            reg.gauge("kernel.bucket_width").set(cal.width, kernel=kernel)
            reg.gauge("kernel.resizes").set(cal.resizes, kernel=kernel)
            reg.gauge("kernel.direct_searches").set(cal.direct_searches, kernel=kernel)
            reg.gauge("kernel.heap_fallback").set(1.0 if cal.fallback else 0.0, kernel=kernel)
