"""Finite-horizon model-predictive controller over the estimator.

Reuses :meth:`BandwidthEstimator.predict` as its plant model: at each
decision it asks the fitted estimator for the next ``mpc_horizon``
predictions (the array branch of the scalar-in/array-in contract) and
actuates on the *minimum* — the largest augmentation degree sustainable
over the whole lookahead.  That closed form is exactly the minimizer of
the worst-case over-retrieval across the horizon, so no optimization
loop is needed and determinism is free.

``mpc_horizon=1`` reduces to Tango's greedy one-step prediction
bit-for-bit (pinned in ``tests/test_control.py``): both evaluate the
same vectorized DFT series at the same relative step.

Before the first fit the controller mirrors the base loop's fallbacks
(mean-of-valid history, then the optimistic bandwidth).
"""

from __future__ import annotations

import numpy as np

from repro.control.base import BaseController
from repro.engine.registry import register_controller

__all__ = ["MpcController"]


@register_controller("mpc")
class MpcController(BaseController):
    """Horizon-minimax predictive control via the fitted estimator."""

    name = "mpc"

    def _plan_bandwidth(self, step: int) -> tuple[float, bool]:
        self._maybe_refit()
        if self.estimator.is_fitted and self._fit_start_step is not None:
            rel = step - self._fit_start_step
            horizon = self.config.mpc_horizon
            preds = np.asarray(
                self.estimator.predict(np.arange(rel, rel + horizon)),
                dtype=np.float64,
            )
            return float(np.min(np.maximum(preds, 0.0))), True
        if self._valid_count:
            return (
                float(np.mean([h.bandwidth for h in self._history if h.valid])),
                False,
            )
        return self.optimistic_bw, False
