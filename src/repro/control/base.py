"""The shared controller protocol: observe → (re)estimate → decide.

Every controller in the family (:data:`repro.engine.registry.CONTROLLERS`)
is a :class:`BaseController` subclass sharing one loop contract with the
analytics driver:

1. ``decide(step)`` → :class:`AdaptationDecision` — the recomposition
   plan plus the weights to program into the container's blkio cgroup;
2. ``observe(step, measured_bw)`` — the achieved bandwidth of the
   completed step, fed back into the controller's state.

The base class owns everything controller-independent: the observation
history with validity bookkeeping, periodic estimator refits, the
graceful-degradation ladder (see :mod:`repro.faults.degradation`), plan
construction through the policy, and observability.  Subclasses plug in
their control law through two hooks:

* :meth:`_plan_bandwidth` — the actuation bandwidth for the next step
  (Tango's estimator prediction, PID's corrected setpoint, MPC's
  horizon minimax);
* :meth:`_on_valid_sample` — per-valid-sample state updates (the PID
  error/integral/derivative chain; a no-op by default).

Both hooks only run in the ``normal`` degradation mode, so every
controller inherits the same fallback ladder behaviour under feed
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.config import ControllerConfig
from repro.core.abplot import AugmentationBandwidthPlot
from repro.core.error_control import AccuracyLadder
from repro.core.estimator import BandwidthEstimator, DFTEstimator
from repro.core.recompose import RecompositionPlan
from repro.faults.degradation import (
    CONTROLLER_MODES,
    MODE_LAST_GOOD,
    MODE_NORMAL,
    MODE_WEIGHTS_ONLY,
    DegradationPolicy,
)
from repro.obs import OBS

__all__ = ["AdaptationDecision", "BaseController"]


@dataclass(frozen=True)
class AdaptationDecision:
    """What the controller decided for one analysis step."""

    step: int
    plan: RecompositionPlan
    predicted_bw: float
    estimator_fitted: bool
    #: Degradation-ladder mode this decision was made in (see
    #: :mod:`repro.faults.degradation`); ``"normal"`` on the happy path.
    mode: str = MODE_NORMAL

    @property
    def target_rung(self) -> int:
        return self.plan.target_rung


@dataclass
class _HistoryEntry:
    step: int
    bandwidth: float
    #: False for samples rejected as feed corruption (NaN, negative,
    #: implausible outlier); invalid samples never feed the estimator.
    valid: bool = True


class BaseController:
    """Per-application adaptation loop: observe → (re)estimate → decide.

    Parameters
    ----------
    ladder:
        The staged accuracy ladder for this application's dataset.
    policy:
        One of the four adaptivity policies.
    abplot:
        Bandwidth → augmentation-degree map.
    config:
        The controller's tuning knobs (see :class:`ControllerConfig`).
    estimator:
        Bandwidth estimator prototype; refit every
        ``config.estimation_interval`` steps on the trailing
        ``config.history_window`` observations.
    degradation:
        Graceful-degradation thresholds (see
        :class:`repro.faults.degradation.DegradationPolicy`).  When set,
        non-finite/negative/outlier samples are *recorded as invalid*
        instead of raising, and sustained feed corruption walks the
        controller down its fallback ladder (last-good → static midpoint
        → weights-only).  ``None`` (the default) keeps the strict legacy
        contract: a bad sample raises :class:`ValueError`.
    """

    #: Registry name of this controller family member.
    name: str = "abstract"

    def __init__(
        self,
        ladder: AccuracyLadder,
        policy,
        abplot: AugmentationBandwidthPlot,
        *,
        config: ControllerConfig,
        estimator: BandwidthEstimator | None = None,
        degradation: DegradationPolicy | None = None,
    ) -> None:
        if not isinstance(config, ControllerConfig):
            raise TypeError(
                f"config must be a ControllerConfig, got {config!r}"
            )
        self.ladder = ladder
        self.policy = policy
        self.abplot = abplot
        self.config = config
        self.prescribed_bound = float(config.prescribed_bound)
        self.priority = float(config.priority)
        self.estimator = estimator if estimator is not None else DFTEstimator()
        self.estimation_interval = int(config.estimation_interval)
        self.min_history = int(config.min_history)
        self.history_window = int(config.history_window)
        self.optimistic_bw = float(
            config.optimistic_bw if config.optimistic_bw is not None else abplot.bw_high
        )
        self.degradation = degradation
        self._history: list[_HistoryEntry] = []
        self._valid_count = 0
        self._invalid_streak = 0
        self._valid_streak = 0
        self._fit_start_step: int | None = None
        self._steps_since_fit = 0
        self._mode = MODE_NORMAL
        self._last_good_prediction: float | None = None
        #: ``(step, from_mode, to_mode)`` degradation-ladder transitions.
        self.mode_history: list[tuple[int, str, str]] = []
        self.decisions: list[AdaptationDecision] = []
        self._obs_cache: tuple | None = None

    @property
    def mode(self) -> str:
        """Current degradation-ladder mode (``"normal"`` on the happy path)."""
        return self._mode

    # -- control-law hooks ------------------------------------------------

    def _plan_bandwidth(self, step: int) -> tuple[float, bool]:
        """The actuation bandwidth for ``step`` in the ``normal`` mode.

        Returns ``(bandwidth, estimator_fitted)``.  The default is
        Tango's loop: the estimator's one-step prediction (with the
        mean-of-history / optimistic fallbacks before the first fit).
        Subclasses override this with their own control law; the value
        flows through ``abplot.degree`` and the policy's plan, so any
        finite bandwidth maps to a valid rung.
        """
        return self.predict_bandwidth(step)

    def _on_valid_sample(self, step: int, measured_bw: float) -> None:
        """Hook: one *valid* bandwidth sample was recorded (no-op here)."""

    # -- observation ----------------------------------------------------

    def _sample_valid(self, measured_bw: float) -> bool:
        if not np.isfinite(measured_bw) or measured_bw < 0:
            return False
        assert self.degradation is not None
        return measured_bw <= self.degradation.outlier_factor * self.abplot.bw_high

    def observe(self, step: int, measured_bw: float) -> None:
        """Record the achieved bandwidth of one completed analysis step.

        Without a degradation policy, a non-finite or negative sample is a
        programming error and raises.  With one, bad samples (including
        implausible outliers beyond ``outlier_factor × bw_high``) are
        recorded as *invalid* — kept in the history for bookkeeping but
        never fed to the estimator — and drive the fallback ladder.
        """
        if self.degradation is None:
            if not np.isfinite(measured_bw) or measured_bw < 0:
                raise ValueError(
                    f"measured_bw must be finite and >= 0, got {measured_bw!r}"
                )
            valid = True
        else:
            valid = self._sample_valid(measured_bw)
        if self._history and step <= self._history[-1].step:
            raise ValueError(
                f"steps must be strictly increasing, got {step} after "
                f"{self._history[-1].step}"
            )
        self._history.append(
            _HistoryEntry(step=step, bandwidth=float(measured_bw), valid=valid)
        )
        if valid:
            self._valid_count += 1
            self._valid_streak += 1
            self._invalid_streak = 0
            self._on_valid_sample(step, float(measured_bw))
        else:
            self._invalid_streak += 1
            self._valid_streak = 0
            if OBS.enabled:
                OBS.registry.counter("controller.invalid_samples").inc(
                    policy=self.policy.name
                )
                OBS.tracer.event(
                    "controller.invalid_sample",
                    step=step,
                    measured_bw=None if not np.isfinite(measured_bw) else float(measured_bw),
                    invalid_streak=self._invalid_streak,
                )

    @property
    def history(self) -> np.ndarray:
        return np.asarray([h.bandwidth for h in self._history])

    def _valid_window(self) -> list[_HistoryEntry]:
        """The trailing ``history_window`` *valid* observations."""
        if self._valid_count == len(self._history):
            return self._history[-self.history_window :]
        window: list[_HistoryEntry] = []
        for h in reversed(self._history):
            if h.valid:
                window.append(h)
                if len(window) == self.history_window:
                    break
        window.reverse()
        return window

    # -- estimation -------------------------------------------------------

    def _maybe_refit(self) -> None:
        if self._valid_count < self.min_history:
            return
        due = self._fit_start_step is None or self._steps_since_fit >= self.estimation_interval
        if not due:
            return
        window = self._valid_window()
        self.estimator.fit(np.asarray([h.bandwidth for h in window]))
        self._fit_start_step = window[0].step
        self._steps_since_fit = 0

    def predict_bandwidth(self, step: int) -> tuple[float, bool]:
        """Prediction for ``step`` and whether it came from a fitted model."""
        self._maybe_refit()
        if self.estimator.is_fitted and self._fit_start_step is not None:
            rel = step - self._fit_start_step
            pred = float(self.estimator.predict(rel))
            return max(pred, 0.0), True
        if self._valid_count:
            return (
                float(np.mean([h.bandwidth for h in self._history if h.valid])),
                False,
            )
        return self.optimistic_bw, False

    # -- decision ----------------------------------------------------------

    def estimation_diagnostics(self) -> dict[str, float]:
        """Health of the current bandwidth model.

        Returns the in-window residual of the last fit (MAE and its ratio
        to the window mean) — a production controller surfaces this so
        operators can see when the interference pattern has shifted faster
        than the refit cadence.
        """
        if not self.estimator.is_fitted or self._fit_start_step is None:
            return {"fitted": 0.0, "mae": float("nan"), "relative_mae": float("nan")}
        window = [
            h.bandwidth
            for h in self._history
            if h.valid and h.step >= self._fit_start_step
        ][: self.history_window]
        if not window:
            return {"fitted": 1.0, "mae": float("nan"), "relative_mae": float("nan")}
        actual = np.asarray(window)
        predicted = np.asarray(self.estimator.predict(np.arange(len(window))))
        mae = float(np.abs(predicted - actual).mean())
        mean = float(actual.mean())
        return {
            "fitted": 1.0,
            "mae": mae,
            "relative_mae": mae / mean if mean > 0 else float("inf"),
        }

    def _select_mode(self) -> str:
        """The degradation-ladder mode for the next decision.

        The invalid-sample streak mandates a depth; a currently degraded
        controller additionally *holds* its mode until ``recovery_samples``
        consecutive valid samples arrive (hysteresis — one good sample in
        the middle of a blackout must not bounce the mode).  The deeper of
        the two wins.
        """
        pol = self.degradation
        if pol is None:
            return MODE_NORMAL
        mandated = pol.mode_for_streak(self._invalid_streak)
        held = MODE_NORMAL
        if self._mode != MODE_NORMAL and self._valid_streak < pol.recovery_samples:
            held = self._mode
        if CONTROLLER_MODES.index(mandated) >= CONTROLLER_MODES.index(held):
            return mandated
        return held

    def _transition_mode(self, step: int, new_mode: str) -> None:
        if new_mode == self._mode:
            return
        old = self._mode
        self._mode = new_mode
        self.mode_history.append((step, old, new_mode))
        if OBS.enabled:
            OBS.registry.counter("controller.mode_transitions").inc(
                policy=self.policy.name, to=new_mode
            )
            OBS.tracer.event(
                "controller.mode_transition",
                step=step,
                from_mode=old,
                to_mode=new_mode,
                invalid_streak=self._invalid_streak,
            )

    def decide(self, step: int) -> AdaptationDecision:
        """Produce the plan (rungs + weights) for analysis step ``step``.

        With a degradation policy attached, the prediction source follows
        the fallback ladder: ``normal`` uses the controller's own law
        (:meth:`_plan_bandwidth`), ``last-good`` holds the last healthy
        prediction, ``static-midpoint`` and ``weights-only`` pin the
        abplot midpoint, and ``weights-only`` additionally forces a full
        (non-adaptive) retrieval plan.
        """
        self._transition_mode(step, self._select_mode())
        mode = self._mode
        adaptive_override: bool | None = None
        if mode == MODE_NORMAL:
            predicted, fitted = self._plan_bandwidth(step)
            self._last_good_prediction = predicted
        elif mode == MODE_LAST_GOOD:
            fitted = False
            predicted = (
                self._last_good_prediction
                if self._last_good_prediction is not None
                else self.optimistic_bw
            )
        else:  # static-midpoint / weights-only
            fitted = False
            predicted = 0.5 * (self.abplot.bw_low + self.abplot.bw_high)
            if mode == MODE_WEIGHTS_ONLY:
                adaptive_override = False
        self._steps_since_fit += 1
        plan = self.policy.plan(
            self.ladder,
            self.prescribed_bound,
            predicted,
            self.abplot,
            self.priority,
            adaptive=adaptive_override,
        )
        decision = AdaptationDecision(
            step=step,
            plan=plan,
            predicted_bw=predicted,
            estimator_fitted=fitted,
            mode=mode,
        )
        self.decisions.append(decision)
        if OBS.enabled:
            # The full decision chain: predicted bw → degree → rung k → weights.
            OBS.tracer.event(
                "controller.decision",
                step=step,
                policy=self.policy.name,
                mode=mode,
                predicted_bw=predicted,
                estimator_fitted=fitted,
                augmentation_degree=plan.augmentation_degree,
                prescribed_rung=plan.prescribed_rung,
                estimated_rung=plan.estimated_rung,
                target_rung=plan.target_rung,
                weights=[s.weight for s in plan.steps if s.weight is not None],
            )
            # Bound instruments cached per registry generation: decide()
            # runs every analysis step, so the per-call registry lookups
            # are hoisted (same pattern as the device/blkio hot paths).
            reg = OBS.registry
            cache = self._obs_cache
            if cache is None or cache[0] is not reg or cache[1] != reg.epoch:
                cache = (
                    reg,
                    reg.epoch,
                    reg.counter("controller.decisions"),
                    reg.gauge("controller.predicted_bw"),
                    reg.gauge("controller.target_rung"),
                )
                self._obs_cache = cache
            cache[2].inc(policy=self.policy.name)
            cache[3].set(predicted)
            cache[4].set(plan.target_rung)
        return decision
