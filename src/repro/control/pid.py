"""PID feedback controller over the measured-bandwidth error.

Following the shared-storage congestion-control line of work (PAPERS.md:
"Mitigating Shared Storage Congestion Using Control Theory"), this
controller closes the loop on the *measured* bandwidth directly instead
of modelling it: each valid sample updates a normalized error against a
bandwidth setpoint, and the actuation is the setpoint's augmentation
degree corrected by the PID terms.

Design points (all pinned by property tests in ``tests/test_control.py``):

* **Anti-windup** — the integral accumulator is clamped to
  ``±pid_integral_limit``, so a long saturation episode (device stall,
  blackout) cannot bank unbounded correction.
* **Derivative filtering** — the derivative term is a first-order
  low-pass of the error delta (``pid_derivative_filter`` is the mixing
  coefficient), taming the sample-to-sample noise a raw derivative
  would amplify.
* **Clamped actuation** — the corrected degree is clipped to [0, 1]
  before mapping back to a bandwidth in ``[bw_low, bw_high]``, so the
  resulting rung always lies in the ladder's valid range.

The estimator is never fitted: the PID law is model-free (that is the
point of the comparison), so refit cost is zero.
"""

from __future__ import annotations

from repro.control.base import BaseController
from repro.engine.registry import register_controller

__all__ = ["PidController"]


@register_controller("pid")
class PidController(BaseController):
    """Model-free PID regulation of the augmentation degree."""

    name = "pid"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._integral = 0.0
        self._derivative = 0.0
        self._error: float | None = None

    def _setpoint(self) -> float:
        sp = self.config.pid_setpoint_bw
        if sp is not None:
            return float(sp)
        return 0.5 * (self.abplot.bw_low + self.abplot.bw_high)

    def _on_valid_sample(self, step: int, measured_bw: float) -> None:
        cfg = self.config
        span = self.abplot.bw_high - self.abplot.bw_low
        error = (measured_bw - self._setpoint()) / span
        if self._error is not None:
            alpha = cfg.pid_derivative_filter
            self._derivative = (1.0 - alpha) * self._derivative + alpha * (
                error - self._error
            )
        limit = cfg.pid_integral_limit
        self._integral = min(max(self._integral + error, -limit), limit)
        self._error = error

    def _plan_bandwidth(self, step: int) -> tuple[float, bool]:
        if self._error is None:
            # No feedback yet: same optimistic opening as the base loop.
            return self.optimistic_bw, False
        cfg = self.config
        correction = (
            cfg.pid_kp * self._error
            + cfg.pid_ki * self._integral
            + cfg.pid_kd * self._derivative
        )
        degree = self.abplot.degree(self._setpoint()) + correction
        degree = min(max(degree, 0.0), 1.0)
        bw = self.abplot.bw_low + degree * (self.abplot.bw_high - self.abplot.bw_low)
        return float(bw), False
