"""The controller family (see ``docs/architecture.md`` §13).

One protocol — ``observe(step, measured_bw)`` / ``decide(step)`` →
:class:`~repro.control.base.AdaptationDecision` — shared by every entry
in the :data:`repro.engine.registry.CONTROLLERS` registry:

* ``"tango"`` — the paper's estimator-prediction loop (bit-identical to
  the pre-registry ``TangoController``);
* ``"pid"`` — model-free PID feedback with anti-windup and derivative
  filtering;
* ``"mpc"`` — finite-horizon predictive control reusing the estimator
  as its plant model.

Controllers are constructed with a keyword-only
:class:`~repro.control.config.ControllerConfig`; scenario configs select
one with ``ScenarioConfig(controller="pid")`` and tune it through
``controller_params``.  Downstream code plugs in its own with
``@register_controller`` on a :class:`BaseController` subclass.
"""

from repro.control.base import AdaptationDecision, BaseController
from repro.control.config import ControllerConfig
from repro.control.mpc import MpcController
from repro.control.pid import PidController
from repro.control.tango import TangoController

__all__ = [
    "AdaptationDecision",
    "BaseController",
    "ControllerConfig",
    "MpcController",
    "PidController",
    "TangoController",
]
