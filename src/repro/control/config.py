"""Keyword-only controller construction config (the redesigned API).

``TangoController`` grew a positional-kwarg sprawl over the releases
(``prescribed_bound, priority, estimator, *, estimation_interval,
min_history, history_window, optimistic_bw, degradation``) that made
every new controller knob a signature change.  :class:`ControllerConfig`
replaces it with one frozen, keyword-only dataclass validated at
construction — controllers take ``config=ControllerConfig(...)`` plus
the two stateful collaborators (``estimator``, ``degradation``) that
cannot live in a frozen config.

The config is shared across the whole controller family: Tango's loop
reads the estimation fields, the PID controller reads the ``pid_*``
gains, MPC reads ``mpc_horizon``.  Unused fields are simply ignored, so
one config sweeps cleanly across ``controller=`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.util.validation import check_positive

__all__ = ["ControllerConfig", "CONTROLLER_PARAM_NAMES"]


@dataclass(frozen=True, kw_only=True)
class ControllerConfig:
    """Everything a controller needs beyond its collaborators.

    Parameters
    ----------
    prescribed_bound:
        The user's error bound in the ladder's metric (required).
    priority:
        The application priority ``p`` (1 = low, 5 = medium, 10 = high).
    estimation_interval:
        Steps between estimator refits (periodic re-estimation).
    min_history:
        Valid samples required before the first fit.
    history_window:
        Trailing valid observations kept for fitting.
    optimistic_bw:
        Prediction used before any history exists (defaults to the
        abplot's ``bw_high`` — retrieve fully until told otherwise).
    pid_kp / pid_ki / pid_kd:
        PID gains over the normalized bandwidth error.
    pid_derivative_filter:
        Low-pass coefficient for the derivative term, in (0, 1]; 1
        disables filtering.
    pid_integral_limit:
        Anti-windup clamp: the integral term stays in ``[-limit, limit]``.
    pid_setpoint_bw:
        Bandwidth setpoint the PID regulates around (defaults to the
        abplot midpoint).
    mpc_horizon:
        MPC lookahead in analysis steps; horizon 1 reduces to Tango's
        greedy one-step prediction.
    """

    prescribed_bound: float
    priority: float = 1.0
    estimation_interval: int = 30
    min_history: int = 8
    history_window: int = 256
    optimistic_bw: float | None = None
    pid_kp: float = 0.8
    pid_ki: float = 0.2
    pid_kd: float = 0.1
    pid_derivative_filter: float = 0.5
    pid_integral_limit: float = 5.0
    pid_setpoint_bw: float | None = None
    mpc_horizon: int = 4

    def with_(self, **changes) -> "ControllerConfig":
        """A modified copy (sugar over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    def __post_init__(self) -> None:
        if self.estimation_interval < 1:
            raise ValueError(
                f"estimation_interval must be >= 1, got {self.estimation_interval}"
            )
        if self.min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {self.min_history}")
        if self.history_window < self.min_history:
            raise ValueError(
                f"history_window must be >= min_history "
                f"({self.min_history}), got {self.history_window}"
            )
        if not 0.0 < self.pid_derivative_filter <= 1.0:
            raise ValueError(
                f"pid_derivative_filter must be in (0, 1], "
                f"got {self.pid_derivative_filter!r}"
            )
        check_positive("pid_integral_limit", self.pid_integral_limit)
        if self.mpc_horizon < 1:
            raise ValueError(f"mpc_horizon must be >= 1, got {self.mpc_horizon}")


#: Valid ``ScenarioConfig.controller_params`` keys (config-level sweeps
#: name ControllerConfig fields directly).
CONTROLLER_PARAM_NAMES = frozenset(f.name for f in fields(ControllerConfig))
