"""The paper's controller, as registry entry ``"tango"``.

The control law is exactly the base loop's default — the DFT (or
ablation) estimator's one-step prediction with periodic refits — so
this class adds nothing but the name and the legacy construction shim.
Runs through ``CONTROLLERS.get("tango")`` are bit-identical to the
pre-registry ``TangoController``, pinned by the recorded engine and
fig07 fingerprints.
"""

from __future__ import annotations

from repro.control.base import BaseController
from repro.control.config import ControllerConfig
from repro.engine.registry import register_controller
from repro.util.validation import warn_deprecated

__all__ = ["TangoController"]

#: Keyword spellings of the pre-ControllerConfig constructor.
_LEGACY_KWARGS = (
    "prescribed_bound",
    "priority",
    "estimation_interval",
    "min_history",
    "history_window",
    "optimistic_bw",
)


@register_controller("tango")
class TangoController(BaseController):
    """Tango's adaptation loop (Section III): estimator prediction → plan.

    Construct with ``config=ControllerConfig(...)``.  The legacy
    positional/keyword signature (``prescribed_bound, priority,
    estimator, *, estimation_interval, ...``) keeps working for one
    release behind a deprecation warning.
    """

    name = "tango"

    def __init__(
        self,
        ladder,
        policy,
        abplot,
        *args,
        config: ControllerConfig | None = None,
        estimator=None,
        degradation=None,
        **legacy,
    ) -> None:
        if config is not None:
            if args or legacy:
                raise TypeError(
                    "TangoController got both config= and legacy parameters "
                    f"{list(legacy) or list(map(type, args))}; "
                    "pass everything through ControllerConfig"
                )
        else:
            if not args and not legacy:
                raise TypeError(
                    "TangoController missing required argument 'config' "
                    "(a ControllerConfig)"
                )
            if len(args) > 3:
                raise TypeError(
                    f"TangoController takes at most 3 legacy positional "
                    f"parameters (prescribed_bound, priority, estimator), "
                    f"got {len(args)}"
                )
            warn_deprecated(
                "TangoController(ladder, policy, abplot, prescribed_bound, ...) "
                "is deprecated; pass config=ControllerConfig(prescribed_bound=..., ...)"
            )
            params = dict(zip(("prescribed_bound", "priority", "estimator"), args))
            if "estimator" in params:
                if estimator is not None:
                    raise TypeError(
                        "TangoController got estimator both positionally and by keyword"
                    )
                estimator = params.pop("estimator")
            if "estimator" in legacy:
                if estimator is not None:
                    raise TypeError(
                        "TangoController got multiple values for 'estimator'"
                    )
                estimator = legacy.pop("estimator")
            unknown = set(legacy) - set(_LEGACY_KWARGS)
            if unknown:
                raise TypeError(
                    f"TangoController got unexpected keyword arguments {sorted(unknown)}"
                )
            overlap = set(params) & set(legacy)
            if overlap:
                raise TypeError(
                    f"TangoController got multiple values for {sorted(overlap)}"
                )
            params.update(legacy)
            config = ControllerConfig(**params)
        super().__init__(
            ladder,
            policy,
            abplot,
            config=config,
            estimator=estimator,
            degradation=degradation,
        )
