"""Programmable QoS data plane: declarative per-tenant I/O policy.

The cross-layer control point generalised (PAIO-style): container I/O is
classified to a tenant, a declarative :class:`QosPolicy` is enforced
(blkio weight, rate caps, token-bucket shaping), and a schedule stage
decides when the request reaches the device — each stage a string-keyed
registry component, swappable per scenario via
``ScenarioConfig.stage_stack``.  See ``docs/architecture.md``
§"QoS data plane".
"""

from repro.dataplane.pipeline import DEFAULT_STAGE_STACK, DataPlane
from repro.dataplane.policy import PRIORITY_CLASSES, QosPolicy, SloTarget, TokenBucket
from repro.dataplane.slo import SloBoard, SloTracker
from repro.dataplane.stages import IORequest

__all__ = [
    "DEFAULT_STAGE_STACK",
    "DataPlane",
    "IORequest",
    "PRIORITY_CLASSES",
    "QosPolicy",
    "SloBoard",
    "SloTracker",
    "SloTarget",
    "TokenBucket",
]
