"""The programmable QoS data plane (PAIO-style, see PAPERS.md).

A :class:`DataPlane` sits between container I/O submission and the
:class:`~repro.storage.device.BlockDevice`: every ``device.submit`` on an
attached device routes through three programmable stages —

    submit ─▶ classify ─▶ enforce ─▶ schedule ─▶ device
               (tenant,     (weight/caps,  (when it reaches
                policy)      shaping delay)  the medium)

— each resolved by name from its :mod:`repro.engine.registry` registry,
with per-tenant behaviour declared as :class:`~repro.dataplane.policy.QosPolicy`
objects rather than code.  The default stack ``("cgroup", "blkio",
"fifo")`` with no policies configured reproduces the pre-dataplane event
sequence bit-for-bit (pinned by the recorded fingerprints in
``tests/test_engine.py`` / ``tests/test_dataplane_guard.py``).

SLO targets on policies are scored per completion through the plane's
:class:`~repro.dataplane.slo.SloBoard`; per-stage decisions and SLO
violations surface through :mod:`repro.obs` counters when observability
is enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.dataplane.slo import SloBoard
from repro.dataplane.stages import IORequest
from repro.engine.registry import (
    CLASSIFY_STAGES,
    ENFORCE_STAGES,
    SCHEDULE_STAGES,
)
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.policy import QosPolicy
    from repro.simkernel import Event, Simulation
    from repro.storage.cgroup import BlkioCgroup
    from repro.storage.device import BlockDevice

__all__ = ["DEFAULT_STAGE_STACK", "DataPlane"]

#: The stack that re-expresses the legacy weight/throttle mechanism.
DEFAULT_STAGE_STACK: tuple[str, str, str] = ("cgroup", "blkio", "fifo")


class DataPlane:
    """A classify → enforce → schedule pipeline over block devices.

    ``policies`` maps tenant name (as produced by the classify stage —
    the cgroup/container name for the default classifier) to
    :class:`~repro.dataplane.policy.QosPolicy`.  ``stack`` names the
    three stages; ``config`` is handed to each stage factory (duck-typed
    scenario config, may be None).
    """

    def __init__(
        self,
        sim: "Simulation",
        *,
        policies: Mapping[str, "QosPolicy"] | None = None,
        stack: tuple[str, str, str] = DEFAULT_STAGE_STACK,
        config=None,
    ) -> None:
        if len(stack) != 3:
            raise ValueError(
                f"stage_stack must be (classify, enforce, schedule), got {stack!r}"
            )
        self.sim = sim
        self.policies: dict[str, "QosPolicy"] = dict(policies or {})
        self.stack = tuple(stack)
        self.classifier = CLASSIFY_STAGES.create(stack[0], config)
        self.enforcer = ENFORCE_STAGES.create(stack[1], config)
        self.scheduler = SCHEDULE_STAGES.create(stack[2], config)
        self.slo = SloBoard()
        self.devices: list["BlockDevice"] = []
        self._seq = 0

    # -- wiring -----------------------------------------------------------

    def attach(self, device: "BlockDevice") -> None:
        """Route an attached device's submissions through this plane."""
        if device.dataplane is not None and device.dataplane is not self:
            raise RuntimeError(
                f"device {device.name!r} is already attached to another plane"
            )
        device.dataplane = self
        if device not in self.devices:
            self.devices.append(device)

    def set_policy(self, tenant: str, policy: "QosPolicy") -> None:
        """Install (or replace) a tenant's policy at runtime."""
        self.policies[tenant] = policy

    # -- the pipeline ------------------------------------------------------

    def submit(
        self,
        device: "BlockDevice",
        cgroup: "BlkioCgroup",
        nbytes: int,
        direction: str,
        extents: int,
    ) -> "Event":
        """Run one request through the stages; called by ``device.submit``."""
        seq = self._seq
        self._seq = seq + 1
        req = IORequest(
            device=device,
            cgroup=cgroup,
            nbytes=nbytes,
            direction=direction,
            extents=extents,
            submitted_at=self.sim.now,
            seq=seq,
        )
        self.classifier.classify(self, req)
        delay = self.enforcer.enforce(self, req)
        policy = req.policy
        if OBS.enabled:
            OBS.registry.counter("dataplane.requests").inc(
                tenant=req.tenant or "?",
                policy="yes" if policy is not None else "no",
            )
        ev = self.scheduler.dispatch(self, req, delay)
        if policy is not None:
            tracker = self.slo.tracker(req.tenant, policy.slo)
            ev.add_callback(lambda e, t=tracker, r=req: t.observe(e, r))
        return ev

    def device_submit(self, req: IORequest) -> "Event":
        """Hand a request to its device (schedule stages call this).

        ``_submit_direct`` schedules the device's ``_start_stream``
        handler, which appends the request's demand row to the device's
        persistent SoA arrays.  ``_start_stream`` is batch-dispatchable:
        under ``dispatch="batched"`` all requests landing at the same
        instant on one device (fan-out bursts, zero-delay schedule
        stages) append their rows in one group call followed by a single
        rate re-solve, instead of one solve per request.
        """
        return req.device._submit_direct(
            req.cgroup,
            req.nbytes,
            req.direction,
            req.extents,
            req.submitted_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DataPlane stack={self.stack} policies={sorted(self.policies)} "
            f"devices={[d.name for d in self.devices]}>"
        )
