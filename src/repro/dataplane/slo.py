"""Per-tenant SLO scoring over data-plane completions.

An SLO is an *observation*, not a mechanism: the plane attaches a
tracker callback to every request from a policy-bearing tenant and
scores the completion against the tenant's :class:`~repro.dataplane.policy.SloTarget`
(when it has one).  Violations increment both a plane-local counter —
so results are available without observability enabled — and, when
:data:`repro.obs.OBS` is switched on, the
``dataplane.slo.violations{tenant=, kind=}`` metric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.policy import SloTarget
    from repro.dataplane.stages import IORequest
    from repro.simkernel import Event

__all__ = ["SloBoard", "SloTracker"]


class SloTracker:
    """Completion accounting for one tenant (target optional)."""

    __slots__ = (
        "tenant",
        "target",
        "completions",
        "errors",
        "violations",
        "bytes_done",
        "latencies",
    )

    def __init__(self, tenant: str, target: "SloTarget | None") -> None:
        self.tenant = tenant
        self.target = target
        self.completions = 0
        self.errors = 0
        self.violations = 0
        self.bytes_done = 0
        self.latencies: list[float] = []

    def observe(self, event: "Event", request: "IORequest") -> None:
        """Score one finished request (failure counts as an error)."""
        if not event.ok:
            self.errors += 1
            return
        stats = event.value
        latency = stats.elapsed
        self.completions += 1
        self.bytes_done += stats.nbytes
        self.latencies.append(latency)
        target = self.target
        if target is None:
            return
        if target.kind == "p99_latency":
            violated = latency > target.value
        else:  # bandwidth_floor
            violated = stats.effective_bandwidth < target.value
        if violated:
            self.violations += 1
            if OBS.enabled:
                OBS.registry.counter("dataplane.slo.violations").inc(
                    tenant=self.tenant, kind=target.kind
                )

    def p99_latency(self) -> float:
        """Realised 99th-percentile submit-to-finish latency (seconds)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, 99))

    def report(self) -> dict:
        """JSON-ready summary row for this tenant."""
        row = {
            "tenant": self.tenant,
            "completions": self.completions,
            "errors": self.errors,
            "violations": self.violations,
            "bytes_done": self.bytes_done,
            "p99_latency_s": self.p99_latency(),
        }
        if self.target is not None:
            row["slo_kind"] = self.target.kind
            row["slo_value"] = self.target.value
        return row


class SloBoard:
    """The plane's tracker table, one per policy-bearing tenant."""

    def __init__(self) -> None:
        self.trackers: dict[str, SloTracker] = {}

    def tracker(self, tenant: str, target: "SloTarget | None") -> SloTracker:
        tracker = self.trackers.get(tenant)
        if tracker is None:
            tracker = SloTracker(tenant, target)
            self.trackers[tenant] = tracker
        return tracker

    @property
    def total_violations(self) -> int:
        return sum(t.violations for t in self.trackers.values())

    def report(self) -> dict[str, dict]:
        """Per-tenant summaries keyed by tenant name (sorted)."""
        return {name: self.trackers[name].report() for name in sorted(self.trackers)}
