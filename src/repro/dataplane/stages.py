"""Built-in data-plane stages (classify → enforce → schedule).

Each stage kind has its own registry in :mod:`repro.engine.registry`
(``CLASSIFY_STAGES`` / ``ENFORCE_STAGES`` / ``SCHEDULE_STAGES``); a stage
is created per plane by ``factory(config)`` where ``config`` is the
scenario config, duck-typed.  The contracts are small:

* **classify**: ``classify(plane, request)`` fills ``request.tenant``
  and ``request.policy`` (None when the tenant has no policy);
* **enforce**: ``enforce(plane, request) -> float`` applies the policy's
  control-plane knobs (weight, caps) and returns the traffic-shaping
  delay in simulated seconds (0.0 = admit now);
* **schedule**: ``dispatch(plane, request, delay) -> Event`` decides
  when the request reaches the device and returns the event the caller
  waits on.

The default stack ``("cgroup", "blkio", "fifo")`` re-expresses today's
hard-wired mechanism: tenants are cgroups, the enforcer pushes the
declarative weight/cap fields through the same cgroup interface the
controller uses, and the FIFO scheduler hands an unshaped request to the
device *synchronously* — with no policy configured every request takes
the exact event path it took before the plane existed, which is what the
pinned fingerprints in ``tests/test_engine.py`` and
``tests/test_dataplane_guard.py`` enforce.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dataplane.policy import TokenBucket
from repro.engine.registry import (
    register_classify_stage,
    register_enforce_stage,
    register_schedule_stage,
)
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.pipeline import DataPlane
    from repro.dataplane.policy import QosPolicy
    from repro.simkernel import Event
    from repro.storage.cgroup import BlkioCgroup
    from repro.storage.device import BlockDevice

__all__ = [
    "IORequest",
    "CgroupClassifier",
    "DirectionClassifier",
    "BlkioEnforcer",
    "NullEnforcer",
    "FifoScheduler",
    "PriorityScheduler",
]

_PRIORITY_RANK = {"low": 0, "normal": 1, "high": 2}


@dataclass(slots=True)
class IORequest:
    """One submission travelling through the pipeline."""

    device: "BlockDevice"
    cgroup: "BlkioCgroup"
    nbytes: int
    direction: str
    extents: int
    submitted_at: float
    seq: int
    tenant: str | None = None
    policy: "QosPolicy | None" = None

    @property
    def priority_rank(self) -> int:
        """Admission preference (higher dispatches first)."""
        if self.policy is None:
            return _PRIORITY_RANK["normal"]
        return _PRIORITY_RANK[self.policy.priority]


def _forward(source: "Event", proxy: "Event") -> None:
    """Propagate a device event's outcome onto the caller-held proxy."""

    def relay(ev: "Event") -> None:
        if ev.ok:
            proxy.succeed(ev.value)
        else:
            proxy.fail(ev.exception)

    source.add_callback(relay)


# -- classify ---------------------------------------------------------------


@register_classify_stage("cgroup")
class CgroupClassifier:
    """Default: the tenant *is* the cgroup (container) name."""

    def __init__(self, config=None) -> None:
        pass

    def classify(self, plane: "DataPlane", req: IORequest) -> None:
        req.tenant = req.cgroup.name
        req.policy = plane.policies.get(req.tenant)


@register_classify_stage("cgroup-direction")
class DirectionClassifier:
    """Split each cgroup into per-direction tenants (``name:read``).

    Policy lookup falls back to the bare cgroup name, so one policy can
    cover both directions while e.g. only writes get a shaping override.
    """

    def __init__(self, config=None) -> None:
        pass

    def classify(self, plane: "DataPlane", req: IORequest) -> None:
        tenant = f"{req.cgroup.name}:{req.direction}"
        req.tenant = tenant
        policy = plane.policies.get(tenant)
        if policy is None:
            policy = plane.policies.get(req.cgroup.name)
        req.policy = policy


# -- enforce ----------------------------------------------------------------


@register_enforce_stage("blkio")
class BlkioEnforcer:
    """Default: push policy knobs through the cgroup blkio interface.

    * ``weight`` is written once, at the tenant's first classified I/O —
      it sets the *initial* proportional share; runtime controllers (the
      Tango adaptation loop) remain free to adjust it afterwards without
      the enforcer fighting them back.
    * ``read_cap_bps`` / ``write_cap_bps`` are installed once per
      (tenant, device), mirroring ``blkio.throttle.*_bps_device``.
    * ``rate_bps`` shapes admissions through a per-tenant
      :class:`~repro.dataplane.policy.TokenBucket` (burst =
      ``burst_bytes``, default one second of rate) and returns the
      resulting delay for the schedule stage to apply.
    """

    def __init__(self, config=None) -> None:
        self._weight_done: set[str] = set()
        self._caps_done: set[tuple[str, str]] = set()
        self._buckets: dict[str, TokenBucket] = {}

    def enforce(self, plane: "DataPlane", req: IORequest) -> float:
        policy = req.policy
        if policy is None:
            return 0.0
        tenant = req.tenant
        now = plane.sim.now
        if policy.weight is not None and tenant not in self._weight_done:
            self._weight_done.add(tenant)
            if req.cgroup.blkio_weight != policy.weight:
                req.cgroup.set_blkio_weight(policy.weight, now=now)
            if OBS.enabled:
                OBS.registry.counter("dataplane.enforce.weights_applied").inc(
                    tenant=tenant
                )
        if policy.read_cap_bps is not None or policy.write_cap_bps is not None:
            key = (tenant, req.device.name)
            if key not in self._caps_done:
                self._caps_done.add(key)
                if policy.read_cap_bps is not None:
                    req.cgroup.set_throttle(req.device, "read", policy.read_cap_bps)
                if policy.write_cap_bps is not None:
                    req.cgroup.set_throttle(req.device, "write", policy.write_cap_bps)
                if OBS.enabled:
                    OBS.registry.counter("dataplane.enforce.caps_applied").inc(
                        tenant=tenant, device=req.device.name
                    )
        if policy.rate_bps is None or req.nbytes == 0:
            return 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(policy.capacity_bytes, policy.rate_bps, start=now)
            self._buckets[tenant] = bucket
        delay = bucket.reserve(req.nbytes, now)
        if delay > 0.0 and OBS.enabled:
            reg = OBS.registry
            reg.counter("dataplane.enforce.shaped").inc(tenant=tenant)
            reg.counter("dataplane.enforce.shaping_delay_s").inc(delay, tenant=tenant)
        return delay


@register_enforce_stage("none")
class NullEnforcer:
    """Ablation baseline: classify tenants but enforce nothing."""

    def __init__(self, config=None) -> None:
        pass

    def enforce(self, plane: "DataPlane", req: IORequest) -> float:
        return 0.0


# -- schedule ---------------------------------------------------------------


@register_schedule_stage("fifo")
class FifoScheduler:
    """Default: dispatch in arrival order, honouring shaping delays.

    An unshaped request goes to the device synchronously and its device
    event is returned as-is — zero added events, zero added callbacks,
    which keeps the no-policy path bit-identical to the pre-dataplane
    submit.  A shaped request gets a proxy event that mirrors the device
    event once the delay elapses.
    """

    def __init__(self, config=None) -> None:
        pass

    def dispatch(self, plane: "DataPlane", req: IORequest, delay: float) -> "Event":
        if delay <= 0.0:
            return plane.device_submit(req)
        proxy = plane.sim.event()
        plane.sim.schedule(delay, self._release, plane, req, proxy)
        return proxy

    @staticmethod
    def _release(plane: "DataPlane", req: IORequest, proxy: "Event") -> None:
        _forward(plane.device_submit(req), proxy)


@register_schedule_stage("priority")
class PriorityScheduler:
    """Admission control: at most ``config.max_inflight`` requests per
    device, dispatched by priority class (then FIFO within a class).

    Queued requests wait for a completion to free a slot; a shaped
    request joins the queue only after its shaping delay.  With
    ``max_inflight=None`` the stage degenerates to priority-tagged FIFO
    (nothing ever queues, since the device itself multiplexes).
    """

    def __init__(self, config=None) -> None:
        limit = getattr(config, "max_inflight", None)
        if limit is not None and limit < 1:
            raise ValueError(f"max_inflight must be >= 1, got {limit!r}")
        self.max_inflight = limit
        self._inflight: dict[str, int] = {}
        self._queues: dict[str, list] = {}

    def dispatch(self, plane: "DataPlane", req: IORequest, delay: float) -> "Event":
        proxy = plane.sim.event()
        if delay > 0.0:
            plane.sim.schedule(delay, self._arrive, plane, req, proxy)
        else:
            self._arrive(plane, req, proxy)
        return proxy

    def _arrive(self, plane: "DataPlane", req: IORequest, proxy: "Event") -> None:
        dev = req.device.name
        limit = self.max_inflight
        if limit is None or self._inflight.get(dev, 0) < limit:
            self._launch(plane, req, proxy)
            return
        # Max-heap on priority via negated rank; seq breaks ties FIFO.
        heapq.heappush(
            self._queues.setdefault(dev, []),
            (-req.priority_rank, req.seq, req, proxy),
        )
        if OBS.enabled:
            OBS.registry.counter("dataplane.schedule.queued").inc(
                tenant=req.tenant or "?", device=dev
            )

    def _launch(self, plane: "DataPlane", req: IORequest, proxy: "Event") -> None:
        dev = req.device.name
        self._inflight[dev] = self._inflight.get(dev, 0) + 1
        if OBS.enabled:
            OBS.registry.counter("dataplane.schedule.dispatched").inc(
                tenant=req.tenant or "?", device=dev
            )
        ev = plane.device_submit(req)
        ev.add_callback(lambda _ev: self._done(plane, dev))
        _forward(ev, proxy)

    def _done(self, plane: "DataPlane", dev: str) -> None:
        self._inflight[dev] -= 1
        queue = self._queues.get(dev)
        if queue:
            _, _, req, proxy = heapq.heappop(queue)
            self._launch(plane, req, proxy)

    def queued_count(self, device_name: str) -> int:
        """Requests currently waiting for an admission slot."""
        return len(self._queues.get(device_name, ()))
