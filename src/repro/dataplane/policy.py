"""Declarative per-tenant QoS policy objects.

A :class:`QosPolicy` is what used to be scattered imperative calls —
``set_blkio_weight``, ``set_throttle``, hand-rolled pacing — expressed as
one frozen value object a config can carry, a sweep can expand, and the
enforce stage can apply mechanically:

* ``weight`` — proportional blkio weight pushed at the tenant's cgroup;
* ``read_cap_bps`` / ``write_cap_bps`` — hard per-direction throttles
  (cgroup ``blkio.throttle.*_bps_device``);
* ``rate_bps`` + ``burst_bytes`` — token-bucket traffic shaping: admit
  up to ``burst_bytes`` instantly, then pace at ``rate_bps``;
* ``priority`` — class used by the ``"priority"`` schedule stage for
  admission ordering;
* ``slo`` — a :class:`SloTarget` the plane scores completions against
  (violations are counted, never enforced — an SLO is an observation).

The token bucket is anchor-based: the level is a *pure function* of the
anchor state and the current sim time, so observing it never mutates and
refill accrues drift-free no matter how often (or unevenly) it is read —
the same discipline as :func:`repro.simkernel.tick_time`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.limits import normalize_throttle, normalize_weight

__all__ = ["PRIORITY_CLASSES", "QosPolicy", "SloTarget", "TokenBucket"]

#: Admission-ordering classes for the "priority" schedule stage, lowest
#: to highest service preference.
PRIORITY_CLASSES = ("low", "normal", "high")

#: SLO kinds: p99 completion latency ceiling (seconds) or effective
#: per-request bandwidth floor (bytes/s).
SLO_KINDS = ("p99_latency", "bandwidth_floor")


@dataclass(frozen=True)
class SloTarget:
    """A service-level objective scored per completed request.

    ``kind="p99_latency"``: a completion whose submit-to-finish latency
    exceeds ``value`` seconds is a violation (and the tracker reports the
    realised p99 for the run).  ``kind="bandwidth_floor"``: a completion
    whose effective bandwidth (bytes over elapsed, latency phase
    included) lands below ``value`` bytes/s is a violation.
    """

    kind: str
    value: float

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"slo kind must be one of {SLO_KINDS}, got {self.kind!r}"
            )
        value = float(self.value)
        if not value > 0:
            raise ValueError(f"slo value must be > 0, got {self.value!r}")


@dataclass(frozen=True)
class QosPolicy:
    """Per-tenant QoS contract consumed by the data-plane stages.

    All fields are optional: an empty policy classifies the tenant (so it
    shows up in per-tenant accounting) without changing anything.  Field
    validation reuses the hoisted cgroup rules in
    :mod:`repro.storage.limits`, so an illegal weight or cap fails at
    config-build time with the same message a runtime write would raise.
    """

    weight: int | None = None
    read_cap_bps: float | None = None
    write_cap_bps: float | None = None
    #: Token-bucket refill rate (bytes/s); None disables shaping.
    rate_bps: float | None = None
    #: Token-bucket capacity (bytes); defaults to one second of
    #: ``rate_bps`` when shaping is on.
    burst_bytes: float | None = None
    priority: str = "normal"
    slo: SloTarget | None = None

    def __post_init__(self) -> None:
        if self.weight is not None:
            normalize_weight(self.weight)
        for label, bps in (
            ("read_cap_bps", self.read_cap_bps),
            ("write_cap_bps", self.write_cap_bps),
            ("rate_bps", self.rate_bps),
        ):
            if bps is not None:
                try:
                    normalize_throttle(bps)
                except ValueError:
                    raise ValueError(
                        f"{label} must be > 0, got {bps!r}"
                    ) from None
        if self.burst_bytes is not None:
            if self.rate_bps is None:
                raise ValueError("burst_bytes requires rate_bps")
            if not float(self.burst_bytes) > 0:
                raise ValueError(
                    f"burst_bytes must be > 0, got {self.burst_bytes!r}"
                )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, got {self.priority!r}"
            )
        if self.slo is not None and not isinstance(self.slo, SloTarget):
            raise ValueError(f"slo must be a SloTarget, got {self.slo!r}")

    @property
    def capacity_bytes(self) -> float:
        """Effective bucket capacity (burst, or one second of rate)."""
        if self.rate_bps is None:
            raise ValueError("policy has no rate_bps; no bucket capacity")
        if self.burst_bytes is not None:
            return float(self.burst_bytes)
        return float(self.rate_bps)


class TokenBucket:
    """Anchor-based token bucket on the simulation clock.

    State is one ``(anchor_time, anchor_tokens)`` pair; the level at any
    instant is computed fresh from it::

        level(now) = min(capacity, anchor_tokens + rate · (now − anchor))

    Pure observation — :meth:`level` never mutates — so repeated reads at
    periodic instants (``tick_time``) accumulate zero float drift.
    :meth:`reserve` implements deficit admission: a request larger than
    the current level is admitted after exactly the time the deficit
    takes to refill, and *keeps accruing while it waits* (the clip at
    ``capacity`` applies to idle credit, not to a reservation in
    progress), so bytes admitted over any window never exceed
    ``capacity + rate · window`` — exact conservation.
    """

    __slots__ = ("capacity", "rate", "_anchor_time", "_anchor_tokens")

    def __init__(
        self,
        capacity: float,
        rate: float,
        *,
        start: float = 0.0,
        tokens: float | None = None,
    ) -> None:
        capacity = float(capacity)
        rate = float(rate)
        if not capacity > 0:
            raise ValueError(f"capacity must be > 0, got {capacity!r}")
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        self.capacity = capacity
        self.rate = rate
        self._anchor_time = float(start)
        tokens = capacity if tokens is None else float(tokens)
        if not 0.0 <= tokens <= capacity:
            raise ValueError(
                f"tokens must be in [0, {capacity!r}], got {tokens!r}"
            )
        self._anchor_tokens = tokens

    def level(self, now: float) -> float:
        """Tokens available at ``now`` (clipped to [0, capacity]).

        A ``now`` before the anchor (an outstanding reservation extends
        the anchor into the future) reads as the anchored residual —
        never negative.
        """
        elapsed = now - self._anchor_time
        if elapsed <= 0.0:
            return self._anchor_tokens
        return min(self.capacity, self._anchor_tokens + self.rate * elapsed)

    def admission_delay(self, nbytes: float, now: float) -> float:
        """Wait until ``nbytes`` could be admitted — without reserving."""
        start = max(now, self._anchor_time)
        lvl = min(
            self.capacity,
            self._anchor_tokens + self.rate * (start - self._anchor_time),
        )
        if lvl >= nbytes:
            return start - now
        return (start - now) + (nbytes - lvl) / self.rate

    def backlog_bytes(self, now: float) -> float:
        """Bytes already admitted but still refilling (the queued deficit).

        A reservation larger than the level pushes the anchor into the
        future; the distance from ``now`` to that anchor, times the rate,
        is exactly the work the bucket still owes — the signal adaptive
        token borrowing acts on.  Zero when no reservation is pending.
        """
        return max(0.0, self._anchor_time - now) * self.rate

    def set_rate(self, rate: float, now: float) -> None:
        """Re-rate the bucket at ``now`` without disturbing its level.

        Credit accrued so far is folded into the anchor at the old rate,
        then the new rate applies from ``now`` on — so a rate change at a
        round boundary never mints or destroys tokens.  With a
        reservation still refilling (anchor in the future) the anchor is
        re-derived so the *outstanding deficit in bytes* is preserved:
        the queued work drains at the new rate from ``now`` on.
        Admission delays already handed out are not revisited.
        """
        rate = float(rate)
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if self._anchor_time >= now:
            deficit = (self._anchor_time - now) * self.rate
            self._anchor_time = now + deficit / rate
            self._anchor_tokens = 0.0 if deficit > 0.0 else self._anchor_tokens
        else:
            self._anchor_tokens = self.level(now)
            self._anchor_time = now
        self.rate = rate

    def reserve(self, nbytes: float, now: float) -> float:
        """Admit ``nbytes``; returns the shaping delay (0.0 = immediate).

        Consumes the tokens and re-anchors at the admission instant, so
        back-to-back reservations queue behind each other in FIFO order
        (the anchor moves into the future while a deficit refills).
        """
        nbytes = float(nbytes)
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        start = max(now, self._anchor_time)
        lvl = min(
            self.capacity,
            self._anchor_tokens + self.rate * (start - self._anchor_time),
        )
        if lvl >= nbytes:
            self._anchor_time = start
            self._anchor_tokens = lvl - nbytes
            return start - now
        admitted_at = start + (nbytes - lvl) / self.rate
        self._anchor_time = admitted_at
        self._anchor_tokens = 0.0
        return admitted_at - now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TokenBucket cap={self.capacity:g} rate={self.rate:g} "
            f"anchor=({self._anchor_time:g}, {self._anchor_tokens:g})>"
        )
