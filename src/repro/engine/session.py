"""``ScenarioSession``: one simulated node, composed from a config.

Every experiment entry point used to hand-wire the same stack —
``Simulation`` → ``TieredStorage`` → ``ContainerRuntime`` → noise/churn
→ ``TangoController`` → ``AnalyticsDriver`` → run loop → teardown.  The
session owns that wiring once.  Callers compose a node step by step
(the call order is the wiring order, so entry points keep their exact
legacy event sequencing and stay bit-identical per seed):

    session = ScenarioSession(config)
    app, field, ladder = session.build_ladder()
    dataset = session.stage("xgc-data", ladder)
    session.launch_noise()
    controller = session.build_controller(ladder)
    driver = session.add_analytics("analytics", dataset, controller)
    session.run()

Components are resolved through the :mod:`repro.engine.registry`
registries, so a config naming a registered estimator, policy, storage
preset, placement, or app just works — including ones registered by
downstream code the engine has never heard of.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.containers import Container, ContainerRuntime
from repro.control import BaseController, ControllerConfig
from repro.core.abplot import AugmentationBandwidthPlot
from repro.dataplane.pipeline import DEFAULT_STAGE_STACK, DataPlane
from repro.core.error_control import AccuracyLadder
from repro.core.weights import WeightFunction, calibrate_weight_function
from repro.engine import memo
from repro.engine.registry import (
    APPS,
    CONTROLLERS,
    ESTIMATORS,
    FAULT_CAMPAIGNS,
    POLICIES,
    STORAGE_PRESETS,
)
from repro.faults.campaign import FaultCampaign, FaultInjector
from repro.faults.degradation import DegradationPolicy
from repro.obs import OBS
from repro.simkernel import Simulation
from repro.storage.staging import (
    StagedDataset,
    TimeSeriesDataset,
    stage_dataset,
    stage_timeseries,
)
from repro.storage.tier import TieredStorage
from repro.util.rng import make_rng
from repro.workloads.analytics import AnalyticsDriver
from repro.workloads.churn import ChurnSpec, launch_churn
from repro.workloads.noise import NoiseSpec, launch_noise

__all__ = ["ScenarioSession", "make_weight_function", "AUTO"]


class _Auto:
    """Sentinel: derive the value from the session's config."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<AUTO>"


AUTO = _Auto()


def make_weight_function(
    ladder: AccuracyLadder,
    *,
    use_priority: bool = True,
    use_accuracy: bool = True,
    priority_range: tuple[float, float] = (1.0, 10.0),
) -> WeightFunction:
    """Calibrate the weight function from what this ladder can produce."""
    return calibrate_weight_function(
        ladder,
        use_priority=use_priority,
        use_accuracy=use_accuracy,
        priority_range=priority_range,
    )


class ScenarioSession:
    """Composes sim/storage/runtime/noise/controller/driver from a config.

    ``config`` is a :class:`repro.experiments.config.ScenarioConfig` (or
    anything duck-typed like one).  ``storage_factory(sim) ->
    TieredStorage`` overrides the registered ``config.tiers`` preset
    (capacity-pressure experiments build bespoke hierarchies);
    ``placement`` is the default staging strategy for :meth:`stage`.
    """

    def __init__(
        self,
        config,
        *,
        storage_factory: Callable[[Simulation], TieredStorage] | None = None,
        placement: str = "level",
    ) -> None:
        self.config = config
        self.placement = placement
        # Campaign configs and duck-typed configs may predate the kernel
        # and dispatch fields; default them to the fast paths (batched
        # dispatch is trace-identical to scalar, so this is safe).
        self.sim = Simulation(
            kernel=getattr(config, "kernel", "calendar"),
            dispatch=getattr(config, "dispatch", "batched"),
        )
        if OBS.enabled:
            OBS.tracer.bind_clock(self.sim)
        if storage_factory is not None:
            self.storage = storage_factory(self.sim)
        else:
            self.storage = STORAGE_PRESETS.create(config.tiers, self.sim)
        # Every session routes device I/O through a QoS data plane.  The
        # default stack with no policies is a bit-identical re-expression
        # of the legacy direct-submit path (pinned by the recorded engine
        # fingerprints), so this costs nothing on the happy path; configs
        # opt into QoS by declaring ``qos_policies`` / ``stage_stack``
        # (read with getattr — campaign configs may predate the fields).
        self.dataplane = DataPlane(
            self.sim,
            policies=dict(getattr(config, "qos_policies", ()) or ()),
            stack=tuple(getattr(config, "stage_stack", DEFAULT_STAGE_STACK)),
            config=config,
        )
        for tier in self.storage.tiers:
            self.dataplane.attach(tier.device)
        self.runtime = ContainerRuntime(self.sim)
        self.drivers: dict[str, AnalyticsDriver] = {}
        self.containers: dict[str, Container] = {}
        self._procs: list = []
        self._teardowns: list[Callable[[], None]] = []
        self._abplot: AugmentationBandwidthPlot | None = None
        #: Fault-campaign injector, set by :meth:`apply_faults` (None on
        #: the happy path).
        self.fault_injector: FaultInjector | None = None
        self.finished = False

    # -- shared components ----------------------------------------------

    @property
    def abplot(self) -> AugmentationBandwidthPlot:
        """The node's augmentation-bandwidth plot (shared across tenants)."""
        if self._abplot is None:
            self._abplot = AugmentationBandwidthPlot(bw_low=self.config.bw_low, bw_high=self.config.bw_high)
        return self._abplot

    def build_ladder(self, *, app: str | None = None, seed: int | None = None):
        """Memoized field + ladder for ``app`` (default: the config's).

        Returns ``(app, field, AccuracyLadder)``; the field/ladder pair
        comes from :func:`repro.engine.memo.ladder_for_app`.
        """
        cfg = self.config
        app_obj = APPS.create(cfg.app if app is None else app)
        data, ladder = memo.ladder_for_app(
            app_obj,
            grid_shape=cfg.grid_shape,
            decimation_ratio=cfg.decimation_ratio,
            metric=cfg.metric,
            error_bounds=cfg.error_bounds,
            seed=cfg.seed if seed is None else seed,
        )
        return app_obj, data, ladder

    # -- workload composition --------------------------------------------

    def launch_noise(
        self,
        noise: Sequence[NoiseSpec] | None = None,
        *,
        seed: int | None = None,
    ) -> list[Container]:
        """Start the interfering containers on the capacity tier."""
        cfg = self.config
        return launch_noise(
            self.runtime,
            self.storage.slowest,
            cfg.noise if noise is None else noise,
            seed=cfg.seed + 1 if seed is None else seed,
            phase_jitter=cfg.noise_phase_jitter,
            period_jitter=cfg.noise_period_jitter,
        )

    def launch_churn(self, spec: ChurnSpec | None = None, *, seed: int | None = None):
        """Start a churning population of checkpointing jobs."""
        return launch_churn(
            self.runtime,
            self.storage.slowest,
            spec,
            seed=self.config.seed + 2 if seed is None else seed,
        )

    def degrade_capacity_tier(self, at_time: float, speed_factor: float) -> None:
        """Schedule a mid-run capacity-tier slowdown (an aging disk)."""
        self.sim.schedule_at(
            at_time, self.storage.slowest.device.set_speed_factor, speed_factor
        )

    def apply_faults(
        self,
        faults: "str | FaultCampaign",
        *,
        seed: int | None = None,
    ) -> FaultInjector:
        """Arm a fault campaign against the capacity-tier device.

        ``faults`` is a campaign name from
        :data:`~repro.engine.registry.FAULT_CAMPAIGNS` (the factory gets
        this session's config, so event times scale to the horizon) or an
        explicit :class:`~repro.faults.campaign.FaultCampaign`.  The
        injector's RNG is seeded from ``config.seed + 3`` (alongside the
        noise/churn conventions), so the expanded plan — and the whole
        run — is bit-identical per seed.  Drivers added *after* this call
        get the campaign's estimator-feed corruption wired in as their
        sample filter.
        """
        if self.fault_injector is not None:
            raise RuntimeError("a fault campaign is already applied to this session")
        cfg = self.config
        campaign = faults
        if isinstance(faults, str):
            campaign = FAULT_CAMPAIGNS.create(faults, cfg)
        rng = make_rng(cfg.seed + 3 if seed is None else seed)
        self.fault_injector = FaultInjector(
            self.sim, self.storage.slowest.device, campaign, rng=rng
        ).schedule()
        return self.fault_injector

    def stage(
        self,
        name: str,
        ladder: AccuracyLadder,
        *,
        placement: str | None = None,
        size_scale: float | None = None,
        materialize: bool = False,
    ) -> StagedDataset:
        """Stage one ladder onto the session's hierarchy."""
        cfg = self.config
        return stage_dataset(
            name,
            ladder,
            self.storage,
            size_scale=cfg.size_scale if size_scale is None else size_scale,
            placement=self.placement if placement is None else placement,
            materialize=materialize,
        )

    def stage_series(
        self,
        name: str,
        ladders: list[AccuracyLadder],
        *,
        placement: str | None = None,
        size_scale: float | None = None,
    ) -> TimeSeriesDataset:
        """Stage a per-timestep ladder sequence (campaign-style)."""
        cfg = self.config
        return stage_timeseries(
            name,
            ladders,
            self.storage,
            size_scale=cfg.size_scale if size_scale is None else size_scale,
            placement=self.placement if placement is None else placement,
        )

    # -- control plane ---------------------------------------------------

    def build_controller(
        self,
        ladder: AccuracyLadder,
        *,
        controller: str | None = None,
        policy: str | None = None,
        priority: float | None = None,
        prescribed_bound=AUTO,
        weight_fn=AUTO,
        weight_use_priority: bool | None = None,
        weight_use_accuracy: bool | None = None,
        weight_cardinality: str | None = None,
        estimator=AUTO,
        estimation_interval: int | None = None,
    ) -> BaseController:
        """Build one tenant's adaptation loop from config + overrides.

        ``controller`` names an entry in the
        :data:`~repro.engine.registry.CONTROLLERS` registry ("tango",
        "pid", "mpc", or anything plugged in); it defaults to the
        config's ``controller`` field.  Per-controller tuning flows in
        through the config's ``controller_params`` pairs, which override
        the session-derived :class:`~repro.control.ControllerConfig`
        fields.

        ``AUTO`` fields derive from the config: the prescribed bound
        honours ``error_control`` (no error control mandates nothing
        beyond the base error, Fig. 8's configuration), the weight
        function comes from the policy class's own
        ``build_weight_function``, and the estimator is created fresh
        from the :data:`~repro.engine.registry.ESTIMATORS` registry.
        """
        cfg = self.config
        policy_cls = POLICIES.get(cfg.policy if policy is None else policy)
        if weight_fn is AUTO:
            weight_fn = policy_cls.build_weight_function(
                ladder,
                use_priority=(
                    cfg.weight_use_priority
                    if weight_use_priority is None
                    else weight_use_priority
                ),
                use_accuracy=(
                    cfg.weight_use_accuracy
                    if weight_use_accuracy is None
                    else weight_use_accuracy
                ),
            )
        policy_obj = policy_cls(
            weight_fn,
            weight_cardinality=(
                cfg.weight_cardinality if weight_cardinality is None else weight_cardinality
            ),
        )
        if prescribed_bound is AUTO:
            prescribed_bound = (
                cfg.prescribed_bound if cfg.error_control else ladder.base_error
            )
        if estimator is AUTO:
            estimator = ESTIMATORS.create(cfg.estimator, cfg)
        # Engine-built controllers degrade gracefully by default (bad feed
        # samples walk the fallback ladder instead of raising); configs
        # can opt out with ``degradation=False`` for the strict contract.
        degradation = DegradationPolicy() if getattr(cfg, "degradation", True) else None
        controller_cls = CONTROLLERS.get(
            getattr(cfg, "controller", "tango") if controller is None else controller
        )
        params = dict(
            prescribed_bound=prescribed_bound,
            priority=cfg.priority if priority is None else priority,
            estimation_interval=(
                cfg.estimation_interval if estimation_interval is None else estimation_interval
            ),
        )
        params.update(dict(getattr(cfg, "controller_params", ()) or ()))
        return controller_cls(
            ladder,
            policy_obj,
            self.abplot,
            config=ControllerConfig(**params),
            estimator=estimator,
            degradation=degradation,
        )

    def add_analytics(
        self,
        name: str,
        dataset: StagedDataset | TimeSeriesDataset,
        controller: BaseController,
        *,
        period: float | None = None,
        max_steps: int | None = None,
        on_step=None,
    ) -> AnalyticsDriver:
        """Create an analytics container and start its adaptive driver."""
        if name in self.drivers:
            raise ValueError(f"analytics container {name!r} already exists")
        cfg = self.config
        container = self.runtime.create(name)
        injector = self.fault_injector
        driver = AnalyticsDriver(
            container,
            dataset,
            controller,
            period=cfg.period if period is None else period,
            max_steps=cfg.max_steps if max_steps is None else max_steps,
            on_step=on_step,
            retry_policy=getattr(cfg, "retry", None),
            # Seeded per driver (after noise=+1, churn=+2, faults=+3) so
            # jittered backoff stays deterministic and tenant-independent.
            rng=make_rng(cfg.seed + 4 + len(self.drivers)),
            sample_filter=injector.corrupt_sample if injector is not None else None,
        )
        proc = self.sim.process(driver.workload())
        container.attach(proc)
        self.drivers[name] = driver
        self.containers[name] = container
        self._procs.append(proc)
        return driver

    # -- run loop + teardown ----------------------------------------------

    def on_teardown(self, fn: Callable[[], None]) -> None:
        """Register a hook to run after the loop, before containers stop."""
        self._teardowns.append(fn)

    @staticmethod
    def run_cluster(cluster_config):
        """Scale out: run a node-sharded cluster scenario.

        A :class:`~repro.cluster.ClusterConfig` describes ``n_nodes``
        token-governed nodes partitioned over shard simulations; each
        shard is its own event loop (one session-equivalent per node
        group), advanced in bounded-lag rounds on a worker pool.  This is
        the session-level entry point so scripts composing single-node
        sessions reach cluster scale from the same class; it simply
        defers to :func:`repro.cluster.run_cluster` (imported lazily —
        cluster runs are opt-in).
        """
        from repro.cluster import run_cluster

        return run_cluster(cluster_config)

    def default_horizon(self) -> float:
        """The legacy single-node wall: every step plus a grace period."""
        return self.config.max_steps * self.config.period + 600.0

    def run(self, *, horizon: float | None = None, chunk: float | None | _Auto = AUTO) -> float:
        """Advance the simulation, then tear the node down.

        ``chunk`` is the run-loop granularity: the default (one analytics
        period) re-checks liveness every period and stops as soon as all
        analytics processes finish; ``chunk=None`` runs straight to the
        horizon in one call (multi-tenant semantics: the node stays up for
        the full window).  Returns the final simulated time.
        """
        if self.finished:
            raise RuntimeError("session already ran; build a new one")
        if horizon is None:
            horizon = self.default_horizon()
        if chunk is AUTO:
            chunk = self.config.period
        if chunk is None:
            self.sim.run(until=horizon)
        else:
            while any(p.is_alive for p in self._procs) and self.sim.now < horizon:
                self.sim.run(until=min(self.sim.now + chunk, horizon))
        for fn in self._teardowns:
            fn()
        self.runtime.stop_all()
        self.finished = True
        return self.sim.now
