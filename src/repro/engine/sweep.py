"""``SweepExecutor``: process-pool fan-out over scenario config grids.

Every sweep in the repository except Fig. 16 used to run serially; this
generalizes Fig. 16's ad-hoc ``mp.Pool`` into one executor the figure
grids, replication statistics, and any future sweep share:

* ``map(fn, items)`` — order-preserving parallel map with a serial
  fallback (``workers <= 1`` or a single item), so parallel output is
  element-for-element identical to serial output;
* ``run_scenarios(configs)`` — one :func:`run_scenario` per config in a
  worker process, reduced to a picklable :class:`ScenarioSummary` (a
  full ``ScenarioResult`` holds the simulation object graph and cannot
  cross a process boundary).

Workers are separate OS processes (``spawn`` context, mirroring the
paper's per-node isolation), so runs share no state and determinism is
free: the same config and seed produce the same summary wherever they
execute.

The pool is **warm**: the first parallel ``map`` spawns it and later
calls reuse it, so a loop of maps (the cluster round loop, a figure
running several grids back to back) pays worker startup once.  Use the
executor as a context manager — or call :meth:`close` — to reclaim the
workers; an unclosed executor tears its pool down on garbage collection.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "ScenarioSummary",
    "SweepExecutor",
    "summarize_result",
    "resolve_workers",
    "WORKERS_ENV",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


#: Environment override capping every resolved worker count.  CI and the
#: cluster runner set this to bound parallelism globally instead of
#: threading a ``--workers`` flag through every CLI entry point.
WORKERS_ENV = "REPRO_WORKERS"


def _workers_cap() -> int | None:
    """The ``REPRO_WORKERS`` cap, or None when unset/empty."""
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if cap < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {raw!r}")
    return cap


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker count: ``None``/1 → serial, ``"auto"`` → CPUs.

    The ``REPRO_WORKERS`` environment variable, when set, caps the
    result (explicit counts included), so an operator can bound
    parallelism for a whole run without touching call sites.
    """
    if workers is None:
        n = 1
    elif workers == "auto":
        try:
            n = max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            n = max(1, os.cpu_count() or 1)
    else:
        n = int(workers)
        if n < 1:
            raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    cap = _workers_cap()
    return n if cap is None else min(n, cap)


@dataclass(frozen=True)
class ScenarioSummary:
    """The picklable part of a :class:`ScenarioResult` that sweeps report.

    Field values match the result's properties exactly (same reductions
    over the same records), so aggregating summaries reproduces what the
    serial figure code computed from full results bit for bit.
    ``mean_outcome_error`` is ``None`` unless the sweep asked for it —
    outcome errors reconstruct the field per rung, which most sweeps
    don't need.
    """

    config: object
    num_records: int
    mean_io_time: float
    std_io_time: float
    mean_target_rung: float
    final_time: float
    mean_outcome_error: float | None = None


def summarize_result(result, *, outcome_error: bool = False) -> ScenarioSummary:
    """Reduce a ``ScenarioResult`` to its sweep-reportable summary."""
    return ScenarioSummary(
        config=result.config,
        num_records=len(result.records),
        mean_io_time=result.mean_io_time,
        std_io_time=result.std_io_time,
        mean_target_rung=result.mean_target_rung,
        final_time=result.final_time,
        mean_outcome_error=result.mean_outcome_error if outcome_error else None,
    )


def _run_scenario_job(job) -> ScenarioSummary:
    """Worker entry point; module-level so it pickles for the pool."""
    config, placement, outcome_error = job
    from repro.experiments.runner import run_scenario

    result = run_scenario(config, placement=placement)
    return summarize_result(result, outcome_error=outcome_error)


class SweepExecutor:
    """Order-preserving map over sweep jobs, optionally in a process pool.

    ``workers`` is the pool size: 1 (the default) runs serially
    in-process, ``"auto"`` uses every available CPU.  Results always come
    back in input order regardless of completion order, and the serial
    path runs the exact same job function — a parallel sweep is
    element-for-element identical to its serial fallback.

    The process pool is created lazily on the first parallel ``map`` and
    stays warm for subsequent calls (``pool_creations`` counts spawns, so
    tests can pin the reuse).  :meth:`close` — or exiting the executor's
    ``with`` block — reclaims the workers.
    """

    def __init__(
        self,
        workers: int | str | None = 1,
        *,
        mp_context: str = "spawn",
        chunksize: int | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.mp_context = mp_context
        self.chunksize = chunksize
        self._pool = None
        #: Number of times a process pool has been spawned; a loop of
        #: ``map`` calls over one executor keeps this at 1.
        self.pool_creations = 0

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = mp.get_context(self.mp_context).Pool(processes=self.workers)
            self.pool_creations += 1
        return self._pool

    def close(self) -> None:
        """Tear down the warm pool (idempotent; a later map respawns it)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item, preserving input order."""
        jobs = list(items)
        if self.workers <= 1 or len(jobs) <= 1:
            return [fn(job) for job in jobs]
        procs = min(self.workers, len(jobs))
        chunksize = self.chunksize or max(1, len(jobs) // (procs * 2))
        return self._ensure_pool().map(fn, jobs, chunksize=chunksize)

    def run_scenarios(
        self,
        configs: Sequence,
        *,
        placement: str = "level",
        outcome_error: bool = False,
    ) -> list[ScenarioSummary]:
        """Run one scenario per config; summaries come back in config order."""
        return self.map(
            _run_scenario_job, [(cfg, placement, outcome_error) for cfg in configs]
        )
