"""Process-local memo cache for decomposition/ladder construction.

Every figure module used to regenerate and re-decompose the same field
for every (policy, replication) cell of its grid; the field and its
ladder depend only on ``(app class, grid shape, decimation ratio,
metric, error_bounds, seed)``, so a sweep of P policies over R replications
pays the decomposition cost P·R times for P·R/R distinct ladders.  This
cache keys on exactly that tuple and shares the resulting
``(field, AccuracyLadder)`` pair.

Sharing is safe because both halves are effectively immutable: the
ladder's construction is deterministic and nothing in the run path
writes to it, and the cached field array is marked read-only so any
accidental in-place mutation (which would silently corrupt later cache
hits) raises instead.  The cache is per-process: parallel sweep workers
each warm their own.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.apps.base import AnalyticsApp
from repro.core.error_control import AccuracyLadder, ErrorMetric, build_ladder
from repro.core.refactor import decompose, levels_for_decimation

__all__ = ["ladder_for_app", "cache_info", "clear_cache"]

#: Bounded LRU: a 256x256 float64 field plus its ladder is ~1.5 MB, so
#: the cache tops out around 50 MB even on ladder-heavy sweeps.
_MAX_ENTRIES = 32

_lock = threading.Lock()
_cache: OrderedDict[tuple, tuple[np.ndarray, AccuracyLadder]] = OrderedDict()
_hits = 0
_misses = 0


def _key(
    app: AnalyticsApp,
    grid_shape: tuple[int, int],
    decimation_ratio: int,
    metric: ErrorMetric,
    error_bounds: tuple[float, ...],
    seed: int,
    method: str,
) -> tuple:
    # The generated field depends on the app *class* (generate ignores
    # constructor tuning, which only affects analyze()), so the class is
    # the right identity here.
    cls = type(app)
    return (
        f"{cls.__module__}.{cls.__qualname__}",
        tuple(grid_shape),
        int(decimation_ratio),
        metric,
        tuple(error_bounds),
        int(seed),
        method,
    )


def ladder_for_app(
    app: AnalyticsApp,
    *,
    grid_shape: tuple[int, int],
    decimation_ratio: int,
    metric: ErrorMetric,
    error_bounds: tuple[float, ...],
    seed: int,
    method: str = "hybrid",
) -> tuple[np.ndarray, AccuracyLadder]:
    """Generate the app's field, decompose it, and build its ladder — memoized.

    ``method`` selects the ladder search strategy (see
    :func:`repro.core.error_control.build_ladder`) and is part of the
    cache key.  The generated field is handed to ``build_ladder`` as the
    reference ``original`` so construction skips its own recompose pass.
    """
    global _hits, _misses
    key = _key(app, grid_shape, decimation_ratio, metric, error_bounds, seed, method)
    with _lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _hits += 1
            return hit
        _misses += 1
    data = app.generate(grid_shape, seed=seed)
    data.setflags(write=False)
    levels = levels_for_decimation(data.shape, decimation_ratio)
    dec = decompose(data, levels)
    ladder = build_ladder(dec, list(error_bounds), metric, method=method, original=data)
    with _lock:
        _cache[key] = (data, ladder)
        _cache.move_to_end(key)
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    return data, ladder


def cache_info() -> dict[str, int]:
    """Hit/miss/size counters (diagnostics and tests)."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "size": len(_cache)}


def clear_cache() -> None:
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
