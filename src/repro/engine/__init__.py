"""The scenario engine: registries, sessions, sweeps, and the ladder memo.

``repro.engine`` is the composition layer between the substrate
(simkernel/storage/containers/core) and the experiments:

* :mod:`repro.engine.registry` — string-keyed component registries with
  a ``@register_*`` decorator API (estimators, policies, storage
  presets, placements, apps);
* :mod:`repro.engine.session` — :class:`ScenarioSession`, the builder
  that composes one simulated node from a config and owns the run loop;
* :mod:`repro.engine.sweep` — :class:`SweepExecutor`, process-pool
  fan-out over config grids with a bit-identical serial fallback;
* :mod:`repro.engine.memo` — the decomposition/ladder memo cache.

This package ``__init__`` stays import-light (registries only): built-in
components import :mod:`repro.engine.registry` to self-register, so
anything heavier here would be circular.  The session/sweep classes are
re-exported lazily.
"""

from repro.engine.registry import (
    APPS,
    ESTIMATORS,
    FAULT_CAMPAIGNS,
    PLACEMENTS,
    POLICIES,
    STORAGE_PRESETS,
    Registry,
    register_app,
    register_estimator,
    register_fault_campaign,
    register_placement,
    register_policy,
    register_storage_preset,
)

__all__ = [
    "Registry",
    "ESTIMATORS",
    "POLICIES",
    "STORAGE_PRESETS",
    "PLACEMENTS",
    "APPS",
    "FAULT_CAMPAIGNS",
    "register_estimator",
    "register_policy",
    "register_storage_preset",
    "register_placement",
    "register_app",
    "register_fault_campaign",
    "ScenarioSession",
    "SweepExecutor",
    "ScenarioSummary",
    "ladder_for_app",
]

_LAZY = {
    "ScenarioSession": ("repro.engine.session", "ScenarioSession"),
    "SweepExecutor": ("repro.engine.sweep", "SweepExecutor"),
    "ScenarioSummary": ("repro.engine.sweep", "ScenarioSummary"),
    "ladder_for_app": ("repro.engine.memo", "ladder_for_app"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), attr)
