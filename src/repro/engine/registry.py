"""String-keyed component registries (the engine's plugin plane).

Every place the codebase used to dispatch on a literal string —
``_make_estimator``'s if/elif, the ``tiers`` branch in ``run_scenario``,
``make_policy``'s table, ``stage_dataset``'s placement check,
``make_app``'s table — now looks the component up in one of the
registries below.  New components plug in with a decorator and become
available everywhere (config validation, CLI choices, sessions, sweeps)
without touching the engine:

    from repro.engine.registry import register_estimator

    @register_estimator("ewma")
    def _make_ewma(config):
        return EWMAEstimator(alpha=0.2)

Built-in components self-register at import time of their defining
module; each registry lazily imports that module on first use, so
``ESTIMATORS.names()`` is complete even when nothing else has been
imported yet.  This module is intentionally dependency-free (stdlib
only) so component modules can import it without cycles.
"""

from __future__ import annotations

import importlib
from typing import Any, Iterator

__all__ = [
    "Registry",
    "ESTIMATORS",
    "POLICIES",
    "CONTROLLERS",
    "STORAGE_PRESETS",
    "PLACEMENTS",
    "APPS",
    "FAULT_CAMPAIGNS",
    "CLASSIFY_STAGES",
    "ENFORCE_STAGES",
    "SCHEDULE_STAGES",
    "register_estimator",
    "register_policy",
    "register_controller",
    "register_storage_preset",
    "register_placement",
    "register_app",
    "register_fault_campaign",
    "register_classify_stage",
    "register_enforce_stage",
    "register_schedule_stage",
]


class Registry:
    """A named table of factories keyed by short string identifiers.

    ``builtins`` names a module whose import registers the built-in
    entries; it is imported lazily on first lookup so that importing the
    registry itself stays free of heavyweight dependencies.
    """

    def __init__(self, kind: str, *, builtins: str | None = None) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._builtins = builtins

    # -- registration ---------------------------------------------------

    def register(self, name: str, obj: Any = None, *, overwrite: bool = False):
        """Register ``obj`` under ``name``; usable as a decorator.

        Registering an already-taken name raises unless ``overwrite=True``
        (deliberate replacement, e.g. patching a component for an
        ablation study).
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")

        def _add(target: Any) -> Any:
            if not overwrite and name in self._entries and self._entries[name] is not target:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._entries[name] = target
            return target

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests tearing down plugins)."""
        self._ensure_builtins()
        self._entries.pop(name, None)

    # -- lookup ---------------------------------------------------------

    def _ensure_builtins(self) -> None:
        if self._builtins is not None:
            module, self._builtins = self._builtins, None
            importlib.import_module(module)

    def get(self, name: str) -> Any:
        """The registered factory, or a ValueError naming the options."""
        self._ensure_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; expected one of {sorted(self._entries)}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call the factory with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        self._ensure_builtins()
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        self._ensure_builtins()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {list(self._entries)}>"


#: Bandwidth estimators: ``factory(config) -> BandwidthEstimator``.
#: ``config`` is duck-typed (anything with the estimator's tuning
#: attributes, e.g. ``ScenarioConfig.dft_thresh``); estimators are
#: stateful, so the factory must return a fresh instance per call.
ESTIMATORS = Registry("estimator", builtins="repro.core.estimator")

#: Adaptivity policies: ``Policy`` subclasses (see ``repro.core.controller``).
POLICIES = Registry("policy", builtins="repro.core.controller")

#: Adaptation controllers: ``BaseController`` subclasses (see
#: ``repro.control``) keyed by short names ("tango", "pid", "mpc").
#: Instantiated uniformly as ``cls(ladder, policy, abplot,
#: config=ControllerConfig(...), estimator=..., degradation=...)``.
CONTROLLERS = Registry("controller", builtins="repro.control")

#: Storage hierarchies: ``factory(sim) -> TieredStorage``.
STORAGE_PRESETS = Registry("storage preset", builtins="repro.storage.tier")

#: Staging placement strategies:
#: ``factory(ladder, storage, scale) -> (base_tier, bucket_tiers)``.
PLACEMENTS = Registry("placement", builtins="repro.storage.staging")

#: Analytics applications: ``factory(**kwargs) -> AnalyticsApp``.
APPS = Registry("app", builtins="repro.apps")

#: Fault campaigns: ``factory(config) -> FaultCampaign``.  ``config`` is
#: duck-typed (``period`` / ``max_steps`` read with defaults) so the same
#: campaign name scales to any scenario horizon.
FAULT_CAMPAIGNS = Registry("fault campaign", builtins="repro.faults.campaign")

#: QoS data-plane stages (see ``repro.dataplane``): each registry maps a
#: short name to ``factory(config) -> stage``, where ``config`` is the
#: scenario config (duck-typed, read with ``getattr`` defaults).  Stages
#: are stateful per plane, so factories must return fresh instances.
CLASSIFY_STAGES = Registry("classify stage", builtins="repro.dataplane.stages")
ENFORCE_STAGES = Registry("enforce stage", builtins="repro.dataplane.stages")
SCHEDULE_STAGES = Registry("schedule stage", builtins="repro.dataplane.stages")


def register_estimator(name: str, obj: Any = None, **kw: Any):
    return ESTIMATORS.register(name, obj, **kw)


def register_policy(name: str, obj: Any = None, **kw: Any):
    return POLICIES.register(name, obj, **kw)


def register_controller(name: str, obj: Any = None, **kw: Any):
    return CONTROLLERS.register(name, obj, **kw)


def register_storage_preset(name: str, obj: Any = None, **kw: Any):
    return STORAGE_PRESETS.register(name, obj, **kw)


def register_placement(name: str, obj: Any = None, **kw: Any):
    return PLACEMENTS.register(name, obj, **kw)


def register_app(name: str, obj: Any = None, **kw: Any):
    return APPS.register(name, obj, **kw)


def register_fault_campaign(name: str, obj: Any = None, **kw: Any):
    return FAULT_CAMPAIGNS.register(name, obj, **kw)


def register_classify_stage(name: str, obj: Any = None, **kw: Any):
    return CLASSIFY_STAGES.register(name, obj, **kw)


def register_enforce_stage(name: str, obj: Any = None, **kw: Any):
    return ENFORCE_STAGES.register(name, obj, **kw)


def register_schedule_stage(name: str, obj: Any = None, **kw: Any):
    return SCHEDULE_STAGES.register(name, obj, **kw)
